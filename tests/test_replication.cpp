// Home agent replication (§2): two support hosts on the home network
// cooperate on the location database; when the active one dies, the
// backup takes over interception — existing mobile host bindings keep
// working.
#include <gtest/gtest.h>

#include "core/replication.hpp"
#include "faults/fault_plane.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// Home LAN with TWO support-host home agents (not routers), a separate
// home router to the backbone, a foreign site with an FA, and a
// correspondent.
struct ReplicatedWorld {
  Topology topo;
  node::Router* home_router;
  node::Router* fa_router;
  node::Host* ha1_host;
  node::Host* ha2_host;
  node::Host* corr;
  net::Link* home_lan;
  net::Link* cell;
  std::unique_ptr<core::MhrpAgent> ha1;
  std::unique_ptr<core::MhrpAgent> ha2;
  std::unique_ptr<core::HaReplicator> repl1;
  std::unique_ptr<core::HaReplicator> repl2;
  std::unique_ptr<core::MhrpAgent> fa;
  core::MobileHost* m;

  ReplicatedWorld() {
    auto& backbone = topo.add_link("backbone", sim::millis(2));
    home_router = &topo.add_router("HomeRouter");
    fa_router = &topo.add_router("FaRouter");
    topo.connect(*home_router, backbone, ip("10.0.0.1"), 24);
    topo.connect(*fa_router, backbone, ip("10.0.0.2"), 24);

    home_lan = &topo.add_link("homeLan", sim::millis(1));
    topo.connect(*home_router, *home_lan, ip("10.1.0.1"), 24);
    ha1_host = &topo.add_host("HA1");
    ha2_host = &topo.add_host("HA2");
    net::Interface& ha1_iface =
        topo.connect(*ha1_host, *home_lan, ip("10.1.0.2"), 24);
    net::Interface& ha2_iface =
        topo.connect(*ha2_host, *home_lan, ip("10.1.0.3"), 24);

    auto& corr_lan = topo.add_link("corrLan", sim::millis(1));
    topo.connect(*fa_router, corr_lan, ip("10.2.0.1"), 24);
    corr = &topo.add_host("C");
    topo.connect(*corr, corr_lan, ip("10.2.0.10"), 24);

    cell = &topo.add_link("cell", sim::millis(1));
    net::Interface& cell_iface =
        topo.connect(*fa_router, *cell, ip("10.3.0.1"), 24);

    core::MobileHostConfig m_config;
    m_config.home_agent = ip("10.1.0.2");  // the primary replica
    m = &topo.add_mobile_host("M", ip("10.1.0.77"), 24, m_config);

    topo.install_static_routes();

    core::AgentConfig ha_config;
    ha_config.home_agent = true;
    ha1 = std::make_unique<core::MhrpAgent>(*ha1_host, ha_config);
    ha1->serve_on(ha1_iface);
    ha1->provision_mobile_host(ip("10.1.0.77"));
    ha1->start_advertising();
    ha2 = std::make_unique<core::MhrpAgent>(*ha2_host, ha_config);
    ha2->serve_on(ha2_iface);
    ha2->provision_mobile_host(ip("10.1.0.77"));

    repl1 = std::make_unique<core::HaReplicator>(
        *ha1, std::vector<net::IpAddress>{ip("10.1.0.3")}, /*primary=*/true);
    repl2 = std::make_unique<core::HaReplicator>(
        *ha2, std::vector<net::IpAddress>{ip("10.1.0.2")},
        /*primary=*/false);
    repl1->start();
    repl2->start();

    core::AgentConfig fa_config;
    fa_config.foreign_agent = true;
    // A pure foreign agent: otherwise its cache-agent role shortcuts the
    // "cold path via the home network" these tests examine.
    fa_config.cache_agent = false;
    fa = std::make_unique<core::MhrpAgent>(*fa_router, fa_config);
    fa->serve_on(cell_iface);
    fa->start_advertising();
  }

  bool register_m_at_cell() {
    bool registered = false;
    m->on_registered = [&registered] { registered = true; };
    m->attach_to(*cell);
    const sim::Time deadline = topo.sim().now() + sim::seconds(30);
    while (!registered && topo.sim().now() < deadline) {
      topo.sim().run_for(sim::millis(100));
    }
    m->on_registered = nullptr;
    return registered;
  }
};

TEST(Replication, BindingsPropagateToTheBackup) {
  ReplicatedWorld w;
  ASSERT_TRUE(w.register_m_at_cell());
  w.topo.sim().run_for(sim::seconds(2));
  auto primary = w.ha1->home_binding(ip("10.1.0.77"));
  auto backup = w.ha2->home_binding(ip("10.1.0.77"));
  ASSERT_TRUE(primary.has_value());
  ASSERT_TRUE(backup.has_value());
  EXPECT_EQ(*primary, ip("10.3.0.1"));
  EXPECT_EQ(*backup, *primary);
  EXPECT_GE(w.repl1->bindings_replicated(), 1u);
  // The backup stays passive: it neither intercepts nor proxies.
  EXPECT_TRUE(w.ha2->passive());
  EXPECT_FALSE(w.ha2_host->has_proxy_arp(
      *w.ha2_host->interfaces().front(), ip("10.1.0.77")));
}

TEST(Replication, BackupTakesOverInterceptionWhenPrimaryDies) {
  ReplicatedWorld w;
  ASSERT_TRUE(w.register_m_at_cell());
  bool warm = false;
  w.corr->ping(ip("10.1.0.77"),
               [&](const node::Host::PingResult& r) { warm = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(warm);
  ASSERT_GE(w.ha1->stats().intercepted_home, 1u);

  // The primary dies completely.
  for (const auto& iface : w.ha1_host->interfaces()) {
    if (iface->attached()) iface->link()->detach(*iface);
  }
  w.topo.sim().run_for(sim::seconds(10));  // heartbeats lapse
  EXPECT_EQ(w.repl2->takeovers(), 1u);
  EXPECT_FALSE(w.ha2->passive());

  // A correspondent with no cache still reaches M: the backup intercepts
  // on the home LAN with its replicated database and tunnels.
  auto& cold = w.topo.add_host("Cold");
  w.topo.connect(cold, *w.topo.find_link("corrLan"), ip("10.2.0.11"), 24);
  cold.routing_table().install({net::Prefix(net::kUnspecified, 0),
                                ip("10.2.0.1"),
                                cold.interfaces().front().get(), 1,
                                routing::RouteKind::kStatic});
  bool replied = false;
  cold.ping(ip("10.1.0.77"),
            [&](const node::Host::PingResult& r) { replied = r.replied; });
  w.topo.sim().run_for(sim::seconds(15));
  EXPECT_TRUE(replied);
  EXPECT_GE(w.ha2->stats().intercepted_home, 1u);
  EXPECT_GE(w.ha2->stats().tunnels_built, 1u);
}

TEST(Replication, RegistrationsReachTheBackupAfterTakeover) {
  ReplicatedWorld w;
  ASSERT_TRUE(w.register_m_at_cell());
  for (const auto& iface : w.ha1_host->interfaces()) {
    if (iface->attached()) iface->link()->detach(*iface);
  }
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_EQ(w.repl2->takeovers(), 1u);

  // M re-registers (a cell bounce): the HomeRegister is addressed to the
  // dead primary's address, which the backup adopted — the exchange
  // completes against the backup's database.
  const auto regs = w.m->stats().registrations_completed;
  ASSERT_TRUE(w.register_m_at_cell());
  EXPECT_GT(w.m->stats().registrations_completed, regs);
  auto binding = w.ha2->home_binding(ip("10.1.0.77"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(*binding, ip("10.3.0.1"));
  EXPECT_GE(w.ha2->stats().registrations, 1u);
}

TEST(Replication, FaultPlaneCrashFailsOverWithinTheHeartbeatTimeout) {
  ReplicatedWorld w;
  ASSERT_TRUE(w.register_m_at_cell());

  faults::FaultPlane plane(w.topo.sim(), 1);
  plane.add_node(*w.ha1_host, w.ha1.get());
  const sim::Time crash_at = w.topo.sim().now() + sim::seconds(1);
  faults::FaultSchedule s;
  faults::FaultEvent crash;
  crash.at = crash_at;
  crash.kind = faults::FaultKind::kNodeCrash;
  crash.target = 0;
  s.add(crash);
  plane.load(s);

  // Timeout is heartbeat_period (500ms) x missed_heartbeats (4) = 2s;
  // allow one extra period of slack for the timer to fire.
  w.topo.sim().run_until(crash_at + sim::millis(2600));
  EXPECT_EQ(plane.stats().node_crashes, 1u);
  EXPECT_EQ(w.repl2->takeovers(), 1u);
  EXPECT_TRUE(w.repl2->is_active());
  EXPECT_FALSE(w.ha2->passive());
}

TEST(Replication, RecoveredPrimaryLeavesExactlyOneActiveReplica) {
  ReplicatedWorld w;
  ASSERT_TRUE(w.register_m_at_cell());

  faults::FaultPlane plane(w.topo.sim(), 1);
  plane.add_node(*w.ha1_host, w.ha1.get());
  faults::FaultSchedule s;
  faults::FaultEvent crash;
  crash.at = w.topo.sim().now() + sim::seconds(1);
  crash.kind = faults::FaultKind::kNodeCrash;
  crash.target = 0;
  crash.duration = sim::seconds(4);
  s.add(crash);
  plane.load(s);

  // Crash at +1s, backup takeover by +3s, reboot at +5s. Both replicas
  // are then briefly active; the non-original one must step down as soon
  // as it hears the original primary's active heartbeat.
  w.topo.sim().run_for(sim::seconds(10));
  EXPECT_EQ(w.repl2->takeovers(), 1u);
  EXPECT_GE(w.repl2->stepdowns(), 1u);
  EXPECT_TRUE(w.repl1->is_active());
  EXPECT_FALSE(w.repl2->is_active());
  EXPECT_FALSE(w.ha1->passive());
  EXPECT_TRUE(w.ha2->passive());

  // Exactly one interceptor: a cold correspondent still reaches M.
  bool replied = false;
  w.corr->ping(ip("10.1.0.77"),
               [&](const node::Host::PingResult& r) { replied = r.replied; });
  w.topo.sim().run_for(sim::seconds(15));
  EXPECT_TRUE(replied);
}

}  // namespace
}  // namespace mhrp
