// Deterministic-replay regression tests: running the same scenario twice
// with the same seed must produce byte-identical observable behavior —
// node counters, link totals, agent statistics, handoff latencies, and
// audit reports. This pins down the event queue's FIFO-at-equal-timestamp
// contract end to end (any ordering drift in the slab queue, the RNG
// forking discipline, or container iteration order shows up here as a
// digest mismatch). Process-global identifiers (packet ids, flow ids,
// MAC addresses) are deliberately outside the digests: they differ
// between two worlds in one process without affecting behavior.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/packet_auditor.hpp"
#include "scenario/audit_hooks.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/replay_digest.hpp"
#include "scenario/scale_world.hpp"

namespace mhrp::scenario {
namespace {

struct MhrpReplayResult {
  std::string digest;
  std::string audit;
  bool all_registered = true;
};

/// One fully scripted MhrpWorld session: two mobiles walk a fixed tour of
/// the foreign sites (including a return home), with a wire auditor
/// attached for the whole run.
MhrpReplayResult run_scripted_mhrp(std::uint64_t seed) {
  MhrpWorldOptions opt;
  opt.foreign_sites = 3;
  opt.mobile_hosts = 2;
  opt.correspondents = 2;
  opt.protocol.seed = seed;
  MhrpWorld world(opt);
  analysis::PacketAuditor auditor;  // after `world`: dies first
  audit::attach(auditor, world);

  MhrpReplayResult result;
  const int tour[] = {0, 1, 2, -1, 2, 0, 1, -1};
  int step = 0;
  for (int site : tour) {
    result.all_registered &= world.move_and_register(step % 2, site);
    ++step;
  }
  world.topo.sim().run_for(sim::seconds(5));  // drain trailing updates

  result.digest = world.metrics_digest();
  result.audit = auditor.report().to_string();
  EXPECT_TRUE(auditor.report().clean()) << result.audit;
  return result;
}

TEST(Replay, MhrpWorldSameSeedIsByteIdentical) {
  MhrpReplayResult first = run_scripted_mhrp(42);
  MhrpReplayResult second = run_scripted_mhrp(42);
  EXPECT_TRUE(first.all_registered);
  EXPECT_TRUE(second.all_registered);
  ASSERT_FALSE(first.digest.empty());
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.audit, second.audit);
}

TEST(Replay, MhrpWorldDigestReflectsActivity) {
  // The digest must actually capture behavior: a world that never moved
  // differs from one that toured the foreign sites.
  MhrpWorldOptions opt;
  opt.protocol.seed = 42;
  MhrpWorld idle(opt);
  idle.topo.sim().run_for(sim::seconds(1));
  MhrpReplayResult toured = run_scripted_mhrp(42);
  EXPECT_NE(idle.metrics_digest(), toured.digest);
}

ScaleWorldOptions scale_options(std::uint64_t seed, int routers) {
  ScaleWorldOptions opt;
  opt.routers = routers;
  opt.foreign_agents = 12;
  opt.mobile_hosts = 24;
  opt.correspondents = 4;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = seed;
  return opt;
}

struct ScaleReplayResult {
  std::string digest;
  ScaleRunStats stats;
};

ScaleReplayResult run_scale(const ScaleWorldOptions& opt,
                            sim::Time duration) {
  ScaleWorld world(opt);
  world.start();
  ScaleReplayResult result;
  result.stats = world.run_for(duration);
  result.digest = world.metrics_digest();
  return result;
}

TEST(Replay, ScaleWorld200RoutersSameSeedIsByteIdentical) {
  ScaleWorldOptions opt = scale_options(7, 200);
  ScaleReplayResult first = run_scale(opt, sim::seconds(10));
  ScaleReplayResult second = run_scale(opt, sim::seconds(10));
  ASSERT_FALSE(first.digest.empty());
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.stats.events_executed, second.stats.events_executed);
  EXPECT_EQ(first.stats.frames_carried, second.stats.frames_carried);
  EXPECT_EQ(first.stats.bytes_carried, second.stats.bytes_carried);
  EXPECT_EQ(first.stats.packets_delivered, second.stats.packets_delivered);
  EXPECT_EQ(first.stats.moves, second.stats.moves);
  EXPECT_EQ(first.stats.registrations, second.stats.registrations);
  // A world that size, run that long, must have actually done something.
  EXPECT_GT(first.stats.packets_delivered, 0u);
  EXPECT_GT(first.stats.moves, 0u);
}

TEST(Replay, ScaleWorldTreeBackboneReplays) {
  ScaleWorldOptions opt = scale_options(11, 63);
  opt.backbone = ScaleWorldOptions::Backbone::kTree;
  ScaleReplayResult first = run_scale(opt, sim::seconds(5));
  ScaleReplayResult second = run_scale(opt, sim::seconds(5));
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_GT(first.stats.packets_delivered, 0u);
}

TEST(Replay, TelemetryCollectionDoesNotPerturbDigest) {
  // The whole telemetry design rests on this: turning on the trace
  // collector and the event-loop profiler must not change one byte of
  // the replay digest. The registry holds only protocol-observable
  // values, traces record without being consulted, and the profiler
  // measures wall time outside the digest.
  ScaleWorldOptions off = scale_options(7, 36);
  ScaleWorldOptions on = scale_options(7, 36);
  on.telemetry.trace = true;
  on.telemetry.profiler = true;
  ScaleReplayResult plain = run_scale(off, sim::seconds(10));
  ScaleReplayResult instrumented = run_scale(on, sim::seconds(10));
  ASSERT_FALSE(plain.digest.empty());
  EXPECT_EQ(plain.digest, instrumented.digest);
  EXPECT_EQ(plain.stats.events_executed, instrumented.stats.events_executed);
  EXPECT_EQ(plain.stats.packets_delivered,
            instrumented.stats.packets_delivered);
}

TEST(Replay, ScaleWorldDifferentSeedsDiverge) {
  ScaleReplayResult a = run_scale(scale_options(7, 36), sim::seconds(10));
  ScaleReplayResult b = run_scale(scale_options(8, 36), sim::seconds(10));
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace mhrp::scenario
