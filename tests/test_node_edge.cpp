// Node-stack edge behaviors: hook ordering, ICMP error suppression rules
// (RFC 1122), quote-length policy, alias ARP answering, and multicast
// membership — details the MHRP machinery leans on implicitly.
#include <gtest/gtest.h>

#include "net/udp.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

struct Lan {
  Topology topo;
  node::Host* a;
  node::Host* b;

  Lan() {
    auto& lan = topo.add_link("lan", sim::millis(1));
    a = &topo.add_host("A");
    b = &topo.add_host("B");
    topo.connect(*a, lan, ip("10.1.0.10"), 24);
    topo.connect(*b, lan, ip("10.1.0.11"), 24);
    topo.install_static_routes();
  }
};

TEST(NodeEdge, EgressHooksRunInRegistrationOrder) {
  Lan w;
  std::vector<int> order;
  w.a->add_egress_hook([&](net::Packet&) { order.push_back(1); });
  w.a->add_egress_hook([&](net::Packet&) { order.push_back(2); });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("10.1.0.11"), 1, 2, data);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(NodeEdge, EgressHookMayRewriteDestination) {
  Lan w;
  w.a->add_egress_hook([&](net::Packet& p) {
    if (p.header().dst == ip("10.99.0.1")) p.header().dst = ip("10.1.0.11");
  });
  int got = 0;
  w.b->bind_udp(7, [&](const net::UdpDatagram&, const net::IpHeader&,
                       net::Interface&) { ++got; });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("10.99.0.1"), 7, 7, data);
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(got, 1);
}

TEST(NodeEdge, NoIcmpErrorAboutIcmpErrors) {
  // An unreachable quoting a packet must not itself draw an error when
  // it dies — send one to a UDP port that would normally bounce.
  Lan w;
  int errors_at_a = 0;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    if (std::holds_alternative<net::IcmpUnreachable>(m)) ++errors_at_a;
    return false;
  });
  // A sends an unreachable to B (protocol ICMP, error type): B must not
  // answer with anything.
  w.a->send_icmp(ip("10.1.0.11"),
                 net::IcmpUnreachable{net::UnreachCode::kHostUnreachable,
                                      std::vector<std::uint8_t>(28, 0)});
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(errors_at_a, 0);
  EXPECT_EQ(w.b->counters().icmp_errors_sent, 0u);
}

TEST(NodeEdge, NoErrorsForBroadcastOrMulticastPackets) {
  Lan w;
  // Broadcast UDP to a closed port: silence, not a storm of
  // port-unreachables.
  std::vector<std::uint8_t> data{1};
  w.a->send_udp_broadcast(*w.a->interfaces().front(), 1, 9999, data);
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(w.b->counters().icmp_errors_sent, 0u);
}

TEST(NodeEdge, QuoteLimitTruncatesReturnedPackets) {
  Lan w;
  w.b->set_icmp_quote_limit(28);
  std::size_t quoted_size = 0;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    if (const auto* u = std::get_if<net::IcmpUnreachable>(&m)) {
      quoted_size = u->quoted.size();
      return true;
    }
    return false;
  });
  std::vector<std::uint8_t> big(400, 0x7E);
  w.a->send_udp(ip("10.1.0.11"), 1, 9999, big);  // port unreachable
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(quoted_size, 28u);

  w.b->set_icmp_quote_limit(0);  // full packet
  w.a->send_udp(ip("10.1.0.11"), 1, 9999, big);
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(quoted_size, 20u + 8u + 400u);
}

TEST(NodeEdge, AliasAddressesAnswerArpAndReceive) {
  Lan w;
  w.b->add_address_alias(ip("10.1.0.200"));
  int got = 0;
  w.b->bind_udp(7, [&](const net::UdpDatagram&, const net::IpHeader&,
                       net::Interface&) { ++got; });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("10.1.0.200"), 7, 7, data);
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(got, 1);

  w.b->remove_address_alias(ip("10.1.0.200"));
  w.a->arp_table(*w.a->interfaces().front()).clear();
  w.a->send_udp(ip("10.1.0.200"), 7, 7, data);
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(got, 1);  // gone: nobody answers for it anymore
}

TEST(NodeEdge, MulticastOnlyDeliveredToMembers) {
  Lan w;
  w.b->join_multicast(net::kAllAgentsGroup);
  int at_a = 0;
  int at_b = 0;
  auto count_at = [](int& counter) {
    return [&counter](const net::IcmpMessage& m, const net::IpHeader&,
                      net::Interface&) {
      if (std::holds_alternative<net::IcmpAgentSolicitation>(m)) ++counter;
      return true;
    };
  };
  w.a->add_icmp_handler(count_at(at_a));
  w.b->add_icmp_handler(count_at(at_b));
  auto& c = w.topo.add_host("C");
  w.topo.connect(c, *w.topo.find_link("lan"), ip("10.1.0.12"), 24);
  c.send_icmp_on(*c.interfaces().front(), net::kAllAgentsGroup,
                 net::IcmpAgentSolicitation{});
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(at_b, 1);
  EXPECT_EQ(at_a, 0);  // not a member
}

TEST(NodeEdge, LocalInterceptorRunsBeforeDemuxAndMayConsume) {
  Lan w;
  int demuxed = 0;
  int intercepted = 0;
  w.b->bind_udp(7, [&](const net::UdpDatagram&, const net::IpHeader&,
                       net::Interface&) { ++demuxed; });
  w.b->add_local_interceptor([&](net::Packet& p, net::Interface&) {
    if (p.header().protocol == net::to_u8(net::IpProto::kUdp)) {
      ++intercepted;
      return node::Intercept::kConsumed;
    }
    return node::Intercept::kContinue;
  });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("10.1.0.11"), 7, 7, data);
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_EQ(intercepted, 1);
  EXPECT_EQ(demuxed, 0);
}

TEST(NodeEdge, LoopbackDeliveryToOwnAddress) {
  Lan w;
  int got = 0;
  w.a->bind_udp(7, [&](const net::UdpDatagram&, const net::IpHeader&,
                       net::Interface&) { ++got; });
  std::vector<std::uint8_t> data{1};
  w.a->send_udp(ip("10.1.0.10"), 7, 7, data);
  w.topo.sim().run_for(sim::seconds(1));
  EXPECT_EQ(got, 1);
}

TEST(NodeEdge, UnknownProtocolDrawsProtocolUnreachable) {
  Lan w;
  bool proto_unreachable = false;
  w.a->add_icmp_handler([&](const net::IcmpMessage& m, const net::IpHeader&,
                            net::Interface&) {
    const auto* u = std::get_if<net::IcmpUnreachable>(&m);
    if (u != nullptr && u->code == net::UnreachCode::kProtocolUnreachable) {
      proto_unreachable = true;
    }
    return false;
  });
  net::IpHeader h;
  h.protocol = 200;  // nobody handles this
  h.dst = ip("10.1.0.11");
  w.a->send_ip(net::Packet(h, {1, 2, 3}));
  w.topo.sim().run_for(sim::seconds(2));
  EXPECT_TRUE(proto_unreachable);
}

}  // namespace
}  // namespace mhrp
