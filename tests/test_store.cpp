// The durable store subsystem (§2: the home database is "recorded on
// disk to survive any crashes and subsequent reboots"): SimDisk cache /
// crash semantics, WalStore recovery edge cases (empty log, snapshot-
// only, torn tail, corrupt mid-log record, crash during compaction,
// superblock fallback), HomeStore sync policies, the ALICE-style crash-
// consistency checker, and the home/replica agents recovering their
// databases from disk through reboot().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/crash_checker.hpp"
#include "core/replication.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/scale_world.hpp"
#include "scenario/topology.hpp"
#include "store/home_store.hpp"
#include "store/sim_disk.hpp"
#include "store/wal_store.hpp"

namespace mhrp {
namespace {

using store::HomeStore;
using store::Lsn;
using store::PersistAction;
using store::RecoveryStats;
using store::SimDisk;
using store::StoreOptions;
using store::SyncPolicy;
using store::WalRecord;
using store::WalStore;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

StoreOptions small_store() {
  StoreOptions o;
  o.enabled = true;
  o.sector_size = 512;
  o.disk_sectors = 1024;
  o.snapshot_region_sectors = 64;
  o.snapshot_every = 1024;  // tests trigger compaction explicitly
  return o;
}

WalRecord binding(const char* mobile, const char* fa, std::uint32_t seq) {
  WalRecord r;
  r.kind = WalRecord::Kind::kBinding;
  r.mobile_host = ip(mobile);
  r.foreign_agent = ip(fa);
  r.sequence = seq;
  return r;
}

WalRecord provision(const char* mobile) {
  WalRecord r;
  r.kind = WalRecord::Kind::kProvision;
  r.mobile_host = ip(mobile);
  return r;
}

// ---- SimDisk ----

TEST(SimDisk, WritesAreVolatileUntilSync) {
  SimDisk disk(512, 8);
  const std::vector<std::uint8_t> data{1, 2, 3, 4};
  disk.write(100, data);
  EXPECT_TRUE(disk.has_unsynced_writes());

  // The cache serves reads; the durable media does not have the bytes.
  EXPECT_EQ(disk.read(100, 4), data);
  std::vector<std::uint8_t> durable(4);
  disk.read_durable(100, durable);
  EXPECT_EQ(durable, std::vector<std::uint8_t>(4, 0));

  // A crash loses the cache entirely.
  disk.crash();
  EXPECT_FALSE(disk.has_unsynced_writes());
  EXPECT_EQ(disk.read(100, 4), std::vector<std::uint8_t>(4, 0));

  // Written again and synced, the bytes reach the media.
  disk.write(100, data);
  ASSERT_TRUE(disk.sync());
  disk.read_durable(100, durable);
  EXPECT_EQ(durable, data);
  EXPECT_FALSE(disk.has_unsynced_writes());
}

TEST(SimDisk, PartialSectorWritePreservesTheRestOfTheSector) {
  SimDisk disk(512, 8);
  std::vector<std::uint8_t> full(512, 0xAA);
  disk.write(512, full);
  ASSERT_TRUE(disk.sync());
  // Overwrite 4 bytes in the middle; the rest of the sector must survive
  // both in the cache image and on the media after sync.
  disk.write(512 + 100, std::vector<std::uint8_t>{1, 2, 3, 4});
  ASSERT_TRUE(disk.sync());
  const auto sector = disk.read(512, 512);
  EXPECT_EQ(sector[99], 0xAA);
  EXPECT_EQ(sector[100], 1);
  EXPECT_EQ(sector[103], 4);
  EXPECT_EQ(sector[104], 0xAA);
}

TEST(SimDisk, CrashHookCutsCleanlyBeforeASector) {
  SimDisk disk(512, 8);
  disk.write(0, std::vector<std::uint8_t>(512, 0x11));    // sector 0
  disk.write(512, std::vector<std::uint8_t>(512, 0x22));  // sector 1
  disk.set_crash_hook([](std::uint64_t step, std::size_t, std::size_t&) {
    return step == 1 ? PersistAction::kCrashBefore : PersistAction::kPersist;
  });
  EXPECT_FALSE(disk.sync());  // sector 0 persisted, crash before sector 1
  disk.clear_crash_hook();
  std::vector<std::uint8_t> s0(512);
  std::vector<std::uint8_t> s1(512);
  disk.read_durable(0, s0);
  disk.read_durable(512, s1);
  EXPECT_EQ(s0, std::vector<std::uint8_t>(512, 0x11));
  EXPECT_EQ(s1, std::vector<std::uint8_t>(512, 0x00));
  EXPECT_EQ(disk.stats().crashes, 1u);
}

TEST(SimDisk, TornWritePersistsExactlyThePrefix) {
  SimDisk disk(512, 8);
  disk.write(0, std::vector<std::uint8_t>(512, 0x77));
  disk.set_crash_hook(
      [](std::uint64_t, std::size_t, std::size_t& tear_at) {
        tear_at = 100;
        return PersistAction::kTear;
      });
  EXPECT_FALSE(disk.sync());
  std::vector<std::uint8_t> s0(512);
  disk.read_durable(0, s0);
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(s0[i], i < 100 ? 0x77 : 0x00) << "byte " << i;
  }
  EXPECT_EQ(disk.stats().torn_sectors, 1u);
}

TEST(SimDisk, ArmedReadErrorsRefuseCoveredSectors) {
  SimDisk disk(512, 8);
  disk.arm_read_errors(/*first=*/2, /*count=*/1);
  EXPECT_NO_THROW(disk.read(0, 16));
  EXPECT_THROW(disk.read(2 * 512 + 4, 8), store::DiskError);
  // A read straddling into the bad sector fails too.
  EXPECT_THROW(disk.read(512 + 500, 64), store::DiskError);
  disk.clear_read_errors();
  EXPECT_NO_THROW(disk.read(2 * 512 + 4, 8));
}

// ---- WalStore recovery edge cases ----

TEST(WalStore, EmptyLogRecoversToEmptyState) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();

  WalStore reopened(disk, small_store());
  const RecoveryStats r = reopened.recover();
  EXPECT_TRUE(r.superblock_found);
  EXPECT_FALSE(r.snapshot_used);
  EXPECT_EQ(r.records_replayed, 0u);
  EXPECT_EQ(r.last_lsn, 0u);
  EXPECT_FALSE(r.stopped_at_invalid);
  EXPECT_TRUE(reopened.state().empty());
}

TEST(WalStore, SnapshotOnlyRecoveryReplaysNoRecords) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();
  (void)wal.append(provision("10.1.0.77"));
  (void)wal.append(binding("10.1.0.77", "10.3.0.1", 1));
  ASSERT_TRUE(wal.sync());
  ASSERT_TRUE(wal.snapshot());  // compacts: the log is logically empty

  WalStore reopened(disk, small_store());
  const RecoveryStats r = reopened.recover();
  EXPECT_TRUE(r.snapshot_used);
  EXPECT_EQ(r.snapshot_lsn, 2u);
  EXPECT_EQ(r.records_replayed, 0u);
  EXPECT_EQ(r.last_lsn, 2u);
  ASSERT_EQ(reopened.state().size(), 1u);
  EXPECT_EQ(reopened.state().at(ip("10.1.0.77")).foreign_agent,
            ip("10.3.0.1"));
  EXPECT_EQ(reopened.state_digest(), wal.state_digest());
}

TEST(WalStore, TornFinalRecordRecoversTheSyncedPrefix) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();
  (void)wal.append(provision("10.1.0.77"));
  for (std::uint32_t s = 1; s <= 5; ++s) {
    (void)wal.append(binding("10.1.0.77", "10.3.0.1", s));
  }
  ASSERT_TRUE(wal.sync());  // LSNs 1..6 durable

  // One more record, torn a few bytes in while persisting.
  (void)wal.append(binding("10.1.0.77", "10.4.0.1", 6));
  disk.set_crash_hook(
      [](std::uint64_t, std::size_t, std::size_t& tear_at) {
        tear_at = 4;
        return PersistAction::kTear;
      });
  EXPECT_FALSE(wal.sync());
  EXPECT_TRUE(wal.crashed());
  disk.clear_crash_hook();

  WalStore reopened(disk, small_store());
  const RecoveryStats r = reopened.recover();
  EXPECT_EQ(r.last_lsn, 6u);  // the torn record is not replayed
  EXPECT_EQ(reopened.state().at(ip("10.1.0.77")).foreign_agent,
            ip("10.3.0.1"));
  EXPECT_EQ(reopened.state().at(ip("10.1.0.77")).sequence, 5u);
}

TEST(WalStore, CorruptMidLogRecordEndsTheValidPrefix) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();
  (void)wal.append(provision("10.1.0.77"));  // LSN 1
  for (std::uint32_t s = 1; s <= 9; ++s) {
    (void)wal.append(binding("10.1.0.77", "10.3.0.1", s));  // LSNs 2..10
  }
  ASSERT_TRUE(wal.sync());

  // Latent corruption inside the 4th record's payload: recovery must
  // replay exactly LSNs 1..3 and report the invalid stop.
  const std::size_t record_bytes = 28;
  disk.corrupt_media(wal.log_start() + 3 * record_bytes + 15);

  WalStore reopened(disk, small_store());
  const RecoveryStats r = reopened.recover();
  EXPECT_EQ(r.records_replayed, 3u);
  EXPECT_EQ(r.last_lsn, 3u);
  EXPECT_TRUE(r.stopped_at_invalid);
  EXPECT_EQ(reopened.state().at(ip("10.1.0.77")).sequence, 2u);

  // Appends continue from the recovered prefix, overwriting the suffix.
  EXPECT_EQ(reopened.append(binding("10.1.0.77", "10.5.0.1", 3)), 4u);
}

TEST(WalStore, CrashDuringCompactionKeepsTheOldSnapshotAndLog) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();
  for (std::uint32_t s = 1; s <= 8; ++s) {
    (void)wal.append(binding(s % 2 == 0 ? "10.1.0.77" : "10.1.0.78", "10.3.0.1",
                       s));
  }
  ASSERT_TRUE(wal.sync());
  const std::string before = wal.state_digest();

  // Crash on the very first sector the compaction tries to persist: the
  // new snapshot never lands and the superblock never flips.
  disk.set_crash_hook([](std::uint64_t, std::size_t, std::size_t&) {
    return PersistAction::kCrashBefore;
  });
  EXPECT_FALSE(wal.snapshot());
  EXPECT_TRUE(wal.crashed());
  EXPECT_EQ(wal.append(binding("10.1.0.77", "10.9.0.1", 99)), 0u)
      << "a crashed store must be inert";
  disk.clear_crash_hook();

  WalStore reopened(disk, small_store());
  const RecoveryStats r = reopened.recover();
  EXPECT_FALSE(r.snapshot_used);  // still the pre-compaction superblock
  EXPECT_EQ(r.last_lsn, 8u);
  EXPECT_EQ(reopened.state_digest(), before);
}

TEST(WalStore, CorruptNewestSuperblockFallsBackToTheOlderCopy) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();  // epoch 1 lives in slot 1
  for (std::uint32_t s = 1; s <= 4; ++s) {
    (void)wal.append(binding("10.1.0.77", "10.3.0.1", s));
  }
  ASSERT_TRUE(wal.sync());
  ASSERT_TRUE(wal.snapshot());  // epoch 2 flips into slot 0

  // The flip's superblock goes bad on the media. Recovery must fall
  // back to epoch 1 — no snapshot, but the (untouched) log still holds
  // LSNs 1..4, so the recovered state is identical.
  disk.corrupt_media(3);
  WalStore reopened(disk, small_store());
  const RecoveryStats r = reopened.recover();
  EXPECT_TRUE(r.superblock_found);
  EXPECT_TRUE(r.superblock_fallback);
  EXPECT_EQ(r.last_lsn, 4u);
  EXPECT_EQ(reopened.state_digest(), wal.state_digest());
}

TEST(WalStore, ReopenAndContinueKeepsLsnsContiguous) {
  SimDisk disk(512, 1024);
  {
    WalStore wal(disk, small_store());
    wal.format();
    EXPECT_EQ(wal.append(provision("10.1.0.77")), 1u);
    EXPECT_EQ(wal.append(binding("10.1.0.77", "10.3.0.1", 1)), 2u);
    ASSERT_TRUE(wal.sync());
  }
  WalStore wal(disk, small_store());
  ASSERT_EQ(wal.recover().last_lsn, 2u);
  EXPECT_EQ(wal.append(binding("10.1.0.77", "10.4.0.1", 2)), 3u);
  ASSERT_TRUE(wal.sync());

  WalStore again(disk, small_store());
  const RecoveryStats r = again.recover();
  EXPECT_EQ(r.last_lsn, 3u);
  EXPECT_EQ(again.state().at(ip("10.1.0.77")).foreign_agent, ip("10.4.0.1"));
}

TEST(WalStore, RecoveryIsByteIdenticalWhenRepeated) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();
  for (std::uint32_t s = 1; s <= 20; ++s) {
    (void)wal.append(binding(s % 3 == 0 ? "10.1.0.78" : "10.1.0.77", "10.3.0.1",
                       s));
  }
  ASSERT_TRUE(wal.sync());

  WalStore first(disk, small_store());
  (void)first.recover();
  WalStore second(disk, small_store());
  (void)second.recover();
  EXPECT_EQ(first.state_digest(), second.state_digest());
}

TEST(WalStore, EraseRecordRetiresTheRow) {
  SimDisk disk(512, 1024);
  WalStore wal(disk, small_store());
  wal.format();
  (void)wal.append(provision("10.1.0.77"));
  (void)wal.append(binding("10.1.0.77", "10.3.0.1", 1));
  WalRecord erase;
  erase.kind = WalRecord::Kind::kErase;
  erase.mobile_host = ip("10.1.0.77");
  (void)wal.append(erase);
  ASSERT_TRUE(wal.sync());

  WalStore reopened(disk, small_store());
  (void)reopened.recover();
  EXPECT_TRUE(reopened.state().empty());
}

TEST(WalStore, LogFullForcesACompaction) {
  StoreOptions o = small_store();
  o.disk_sectors = 96;  // 2 superblocks + 2*32 snapshot + 30 log sectors
  o.snapshot_region_sectors = 32;
  SimDisk disk(o.sector_size, o.disk_sectors);
  WalStore wal(disk, o);
  wal.format();
  // Far more records than the log region holds; forced compactions must
  // keep absorbing them without error.
  for (std::uint32_t s = 1; s <= 2000; ++s) {
    ASSERT_NE(wal.append(binding("10.1.0.77", "10.3.0.1", s)), 0u)
        << "append " << s;
  }
  ASSERT_TRUE(wal.sync());
  EXPECT_GT(wal.stats().forced_snapshots, 0u);

  WalStore reopened(disk, o);
  const RecoveryStats r = reopened.recover();
  EXPECT_EQ(r.last_lsn, 2000u);
  EXPECT_EQ(reopened.state().at(ip("10.1.0.77")).sequence, 2000u);
}

// ---- HomeStore sync policies ----

TEST(HomeStore, SyncPolicyAcksImmediatelyAndDurably) {
  sim::Simulator sim;
  StoreOptions o = small_store();
  o.sync_policy = SyncPolicy::kSync;
  HomeStore hs(sim, o);
  const HomeStore::Ticket t = hs.log(binding("10.1.0.77", "10.3.0.1", 1));
  EXPECT_TRUE(t.ack_now);
  EXPECT_EQ(t.lsn, 1u);
  EXPECT_EQ(hs.durable_lsn(), 1u);  // already synced
  EXPECT_FALSE(hs.disk().has_unsynced_writes());
}

TEST(HomeStore, IntervalPolicyDefersAcksUntilTheGroupCommit) {
  sim::Simulator sim;
  StoreOptions o = small_store();
  o.sync_policy = SyncPolicy::kInterval;
  o.sync_interval = sim::millis(50);
  HomeStore hs(sim, o);
  std::vector<Lsn> durable;
  hs.on_durable = [&durable](Lsn lsn) { durable.push_back(lsn); };

  const HomeStore::Ticket t1 = hs.log(binding("10.1.0.77", "10.3.0.1", 1));
  const HomeStore::Ticket t2 = hs.log(binding("10.1.0.78", "10.3.0.1", 1));
  EXPECT_FALSE(t1.ack_now);
  EXPECT_FALSE(t2.ack_now);
  EXPECT_EQ(hs.durable_lsn(), 0u);

  sim.run_for(sim::millis(60));  // one timer fire
  ASSERT_EQ(durable.size(), 1u);
  EXPECT_EQ(durable[0], t2.lsn);
  EXPECT_EQ(hs.durable_lsn(), 2u);
  EXPECT_GE(hs.stats().interval_syncs, 1u);
}

TEST(HomeStore, AsyncPolicyAcksBeforeDurability) {
  sim::Simulator sim;
  StoreOptions o = small_store();
  o.sync_policy = SyncPolicy::kAsync;
  o.sync_interval = sim::millis(50);
  HomeStore hs(sim, o);
  const HomeStore::Ticket t = hs.log(binding("10.1.0.77", "10.3.0.1", 1));
  EXPECT_TRUE(t.ack_now);
  EXPECT_EQ(hs.durable_lsn(), 0u);  // the ack outran the disk
  sim.run_for(sim::millis(60));
  EXPECT_EQ(hs.durable_lsn(), 1u);  // background sync caught up
}

TEST(HomeStore, CrashAndRecoverRestoresDurableRowsOnly) {
  sim::Simulator sim;
  StoreOptions o = small_store();
  o.sync_policy = SyncPolicy::kInterval;
  o.sync_interval = sim::seconds(300);  // no commit before the crash
  HomeStore hs(sim, o);
  (void)hs.log(binding("10.1.0.77", "10.3.0.1", 1));
  ASSERT_TRUE(hs.flush());
  (void)hs.log(binding("10.1.0.77", "10.4.0.1", 2));  // cached, never synced

  hs.crash();
  EXPECT_TRUE(hs.down());
  EXPECT_EQ(hs.log(binding("10.1.0.78", "10.3.0.1", 1)).lsn, 0u);

  const RecoveryStats r = hs.recover();
  EXPECT_FALSE(hs.down());
  EXPECT_EQ(r.last_lsn, 1u);
  EXPECT_EQ(hs.state().at(ip("10.1.0.77")).foreign_agent, ip("10.3.0.1"));
  EXPECT_EQ(hs.stats().crashes, 1u);
  EXPECT_EQ(hs.stats().recoveries, 1u);
}

// ---- CrashConsistencyChecker ----

analysis::CrashCheckerOptions checker_options(SyncPolicy policy) {
  analysis::CrashCheckerOptions o;
  o.store = StoreOptions();
  o.store.enabled = true;
  o.store.sync_policy = policy;
  o.store.sector_size = 512;
  o.store.disk_sectors = 512;
  o.store.snapshot_region_sectors = 32;
  o.store.snapshot_every = 64;  // several compactions inside the workload
  o.workload_records = 160;
  o.mobiles = 6;
  o.sync_every = 4;
  o.seed = 0xD15C;
  return o;
}

TEST(CrashChecker, EnumerateIsCleanUnderSyncPolicy) {
  analysis::CrashConsistencyChecker checker(
      checker_options(SyncPolicy::kSync));
  analysis::AuditReport report;
  const analysis::CrashCheckerResult r = checker.enumerate(report);
  EXPECT_TRUE(r.clean()) << r.summary() << report.to_string();
  EXPECT_EQ(r.acked_lost, 0u);
  EXPECT_GT(r.crash_points, 100u);
  EXPECT_GT(r.torn_runs, 0u);
  EXPECT_EQ(report.count(analysis::InvariantId::kWalPrefixConsistent), 0u);
  EXPECT_EQ(report.count(analysis::InvariantId::kDurableAckNotLost), 0u);
}

TEST(CrashChecker, EnumerateIsCleanUnderIntervalPolicy) {
  analysis::CrashConsistencyChecker checker(
      checker_options(SyncPolicy::kInterval));
  analysis::AuditReport report;
  const analysis::CrashCheckerResult r = checker.enumerate(report);
  EXPECT_TRUE(r.clean()) << r.summary() << report.to_string();
  EXPECT_EQ(r.acked_lost, 0u);
}

TEST(CrashChecker, FuzzThousandCrashPointsStaysClean) {
  // The acceptance bar: >= 1000 seeded crash points, every recovery
  // prefix-consistent and no acked registration lost under a durable
  // policy.
  analysis::CrashConsistencyChecker checker(
      checker_options(SyncPolicy::kSync));
  analysis::AuditReport report;
  const analysis::CrashCheckerResult r = checker.fuzz(1000, report);
  EXPECT_GE(r.runs, 1000u);
  EXPECT_TRUE(r.clean()) << r.summary() << report.to_string();
  EXPECT_EQ(r.acked_lost, 0u);
}

TEST(CrashChecker, AsyncPolicyLosesAckedRegistrationsMeasurably) {
  // kAsync acks ahead of the disk; the checker must *count* the acked-
  // then-lost registrations without flagging them as violations — the
  // loss is the policy's documented trade, and the number is the
  // experiment's headline.
  analysis::CrashConsistencyChecker checker(
      checker_options(SyncPolicy::kAsync));
  analysis::AuditReport report;
  const analysis::CrashCheckerResult r = checker.enumerate(report);
  EXPECT_TRUE(r.clean()) << r.summary() << report.to_string();
  EXPECT_GT(r.acked_lost, 0u);
}

TEST(CrashChecker, SameSeedReplaysByteIdentically) {
  analysis::AuditReport r1;
  analysis::AuditReport r2;
  analysis::CrashConsistencyChecker a(checker_options(SyncPolicy::kSync));
  analysis::CrashConsistencyChecker b(checker_options(SyncPolicy::kSync));
  EXPECT_EQ(a.fuzz(200, r1).summary(), b.fuzz(200, r2).summary());
}

// ---- Agent integration (log-before-ack, reboot recovery) ----

scenario::MhrpWorldOptions stored_world(SyncPolicy policy) {
  scenario::MhrpWorldOptions o;
  o.foreign_sites = 2;
  o.mobile_hosts = 2;
  o.correspondents = 1;
  o.protocol.store = small_store();
  o.protocol.store.sync_policy = policy;
  return o;
}

TEST(AgentStore, RegistrationIsLoggedBeforeTheAckUnderSyncPolicy) {
  scenario::MhrpWorld w(stored_world(SyncPolicy::kSync));
  ASSERT_TRUE(w.move_and_register(0, 1));
  EXPECT_GT(w.ha->stats().bindings_logged, 0u);
  // Everything logged is already durable — that is what kSync means.
  EXPECT_EQ(w.ha_store->durable_lsn(), w.ha_store->last_lsn());
  EXPECT_EQ(w.ha_store->state().at(w.mobile_address(0)).foreign_agent,
            w.fa_address(1));
}

TEST(AgentStore, IntervalPolicyReleasesDeferredAcksAtTheCommit) {
  scenario::MhrpWorldOptions o = stored_world(SyncPolicy::kInterval);
  o.protocol.store.sync_interval = sim::millis(50);
  scenario::MhrpWorld w(o);
  ASSERT_TRUE(w.move_and_register(0, 0));
  EXPECT_GT(w.ha->stats().acks_deferred, 0u);
  EXPECT_GT(w.ha->stats().acks_released, 0u);
  EXPECT_EQ(w.ha->pending_ack_count(), 0u);
}

TEST(AgentStore, RebootRebuildsTheDatabaseFromDisk) {
  scenario::MhrpWorld w(stored_world(SyncPolicy::kSync));
  ASSERT_TRUE(w.move_and_register(0, 1));
  ASSERT_TRUE(w.move_and_register(1, 0));
  const auto b0 = w.ha->home_binding(w.mobile_address(0));
  ASSERT_TRUE(b0.has_value());

  // reboot(preserve) with a store attached is a crash + mount: the
  // in-memory map is discarded and rebuilt from the recovered rows.
  w.ha->reboot(/*preserve_home_database=*/true);
  EXPECT_EQ(w.ha_store->stats().crashes, 1u);
  EXPECT_EQ(w.ha_store->stats().recoveries, 1u);
  const auto recovered0 = w.ha->home_binding(w.mobile_address(0));
  const auto recovered1 = w.ha->home_binding(w.mobile_address(1));
  ASSERT_TRUE(recovered0.has_value());
  ASSERT_TRUE(recovered1.has_value());
  EXPECT_EQ(*recovered0, *b0);
  EXPECT_EQ(w.ha->home_database_size(), 2u);
}

TEST(AgentStore, RebootWithoutPreserveWipesTheDisk) {
  scenario::MhrpWorld w(stored_world(SyncPolicy::kSync));
  ASSERT_TRUE(w.move_and_register(0, 1));
  w.ha->reboot(/*preserve_home_database=*/false);
  EXPECT_EQ(w.ha->home_database_size(), 0u);
  EXPECT_TRUE(w.ha_store->state().empty());
  EXPECT_EQ(w.ha_store->last_lsn(), 0u);  // a freshly formatted log
}

TEST(AgentStore, RebootDropsPendingAcks) {
  // A group-commit interval far beyond the test horizon parks every
  // registration ack; the reboot must clear them (the mobile will
  // retransmit — §3's registration protocol assumes lost replies).
  scenario::MhrpWorldOptions o = stored_world(SyncPolicy::kInterval);
  o.protocol.store.sync_interval = sim::seconds(3600);
  scenario::MhrpWorld w(o);
  w.mobiles[0]->attach_to(*w.cells[0]);
  w.topo.sim().run_for(sim::seconds(3));
  ASSERT_GT(w.ha->pending_ack_count(), 0u);

  w.ha->reboot(/*preserve_home_database=*/true);
  EXPECT_EQ(w.ha->pending_ack_count(), 0u);
  EXPECT_GT(w.ha->stats().acks_dropped_on_crash, 0u);
}

TEST(AgentStore, AsyncPolicyCanLoseAnAckedRegistrationAcrossReboot) {
  scenario::MhrpWorldOptions o = stored_world(SyncPolicy::kAsync);
  o.protocol.store.sync_interval = sim::seconds(3600);  // sync never fires
  scenario::MhrpWorld w(o);
  ASSERT_TRUE(w.move_and_register(0, 1));  // acked, but only in the cache
  EXPECT_LT(w.ha_store->durable_lsn(), w.ha_store->last_lsn());

  w.ha->reboot(/*preserve_home_database=*/true);
  // Nothing ever reached the media, so recovery comes back empty: the
  // acked binding is gone — exactly the loss the crash checker counts.
  EXPECT_FALSE(w.ha->home_binding(w.mobile_address(0)).has_value());
}

// ---- Replica recovery from its own disk ----

TEST(ReplicaStore, BackupRecoversReplicatedBindingsFromItsOwnDisk) {
  scenario::Topology topo;
  auto& backbone = topo.add_link("backbone", sim::millis(2));
  auto* home_router = &topo.add_router("HomeRouter");
  auto* fa_router = &topo.add_router("FaRouter");
  topo.connect(*home_router, backbone, ip("10.0.0.1"), 24);
  topo.connect(*fa_router, backbone, ip("10.0.0.2"), 24);
  auto& home_lan = topo.add_link("homeLan", sim::millis(1));
  topo.connect(*home_router, home_lan, ip("10.1.0.1"), 24);
  auto* ha1_host = &topo.add_host("HA1");
  auto* ha2_host = &topo.add_host("HA2");
  net::Interface& ha1_iface =
      topo.connect(*ha1_host, home_lan, ip("10.1.0.2"), 24);
  net::Interface& ha2_iface =
      topo.connect(*ha2_host, home_lan, ip("10.1.0.3"), 24);
  auto& cell = topo.add_link("cell", sim::millis(1));
  net::Interface& cell_iface =
      topo.connect(*fa_router, cell, ip("10.3.0.1"), 24);
  core::MobileHostConfig m_config;
  m_config.home_agent = ip("10.1.0.2");
  auto* m = &topo.add_mobile_host("M", ip("10.1.0.77"), 24, m_config);
  topo.install_static_routes();

  core::AgentConfig ha_config;
  ha_config.home_agent = true;
  auto ha1 = std::make_unique<core::MhrpAgent>(*ha1_host, ha_config);
  ha1->serve_on(ha1_iface);
  ha1->provision_mobile_host(ip("10.1.0.77"));
  ha1->start_advertising();
  auto ha2 = std::make_unique<core::MhrpAgent>(*ha2_host, ha_config);
  ha2->serve_on(ha2_iface);
  ha2->provision_mobile_host(ip("10.1.0.77"));

  // Both replicas persist to their *own* disks.
  StoreOptions so = small_store();
  HomeStore store1(topo.sim(), so);
  HomeStore store2(topo.sim(), so);
  ha1->attach_store(store1);
  ha2->attach_store(store2);

  core::HaReplicator repl1(*ha1,
                           std::vector<net::IpAddress>{ip("10.1.0.3")},
                           /*primary=*/true);
  core::HaReplicator repl2(*ha2,
                           std::vector<net::IpAddress>{ip("10.1.0.2")},
                           /*primary=*/false);
  repl1.start();
  repl2.start();

  core::AgentConfig fa_config;
  fa_config.foreign_agent = true;
  fa_config.cache_agent = false;
  auto fa = std::make_unique<core::MhrpAgent>(*fa_router, fa_config);
  fa->serve_on(cell_iface);
  fa->start_advertising();

  bool registered = false;
  m->on_registered = [&registered] { registered = true; };
  m->attach_to(cell);
  const sim::Time deadline = topo.sim().now() + sim::seconds(30);
  while (!registered && topo.sim().now() < deadline) {
    topo.sim().run_for(sim::millis(100));
  }
  ASSERT_TRUE(registered);
  topo.sim().run_for(sim::seconds(2));  // let the replication land

  // The replicated binding reached the backup's WAL...
  ASSERT_TRUE(ha2->home_binding(ip("10.1.0.77")).has_value());
  EXPECT_EQ(store2.state().at(ip("10.1.0.77")).foreign_agent,
            ip("10.3.0.1"));

  // ...and a backup reboot rebuilds it from that disk, not from memory.
  ha2->reboot(/*preserve_home_database=*/true);
  EXPECT_EQ(store2.stats().recoveries, 1u);
  const auto recovered = ha2->home_binding(ip("10.1.0.77"));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, ip("10.3.0.1"));
}

// ---- ScaleWorld chaos: HA crashes against the durable store ----

TEST(ScaleWorldStore, HaCrashChaosLosesNothingUnderSyncAndReplays) {
  scenario::ScaleWorldOptions opt;
  opt.routers = 9;
  opt.foreign_agents = 3;
  opt.mobile_hosts = 8;
  opt.correspondents = 2;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = 7;
  opt.protocol.store = small_store();  // kSync: nothing may be lost
  opt.chaos.enabled = true;
  opt.chaos.fault_seed = 0xfa17;
  opt.chaos.horizon = sim::seconds(30);
  opt.chaos.ha_crashes_per_sec = 0.2;
  opt.chaos.mean_downtime = sim::seconds(1);

  auto run = [&opt] {
    scenario::ScaleWorld w(opt);
    w.start();
    w.run_for(sim::seconds(30));
    return std::pair<std::string, std::vector<double>>(
        w.metrics_digest(), w.ha_lost_bindings());
  };
  const auto [digest1, lost1] = run();
  const auto [digest2, lost2] = run();

  ASSERT_FALSE(lost1.empty()) << "the schedule must actually crash the HA";
  for (double lost : lost1) {
    EXPECT_EQ(lost, 0.0) << "kSync recovery dropped an acked binding";
  }
  EXPECT_EQ(digest1, digest2) << "store + HA chaos must replay identically";
}

}  // namespace
}  // namespace mhrp
