// Tests for the five §7 comparison protocols. Each reproduces the
// behavioral signature the paper attributes to that protocol: overhead
// bytes, control-message pattern, staleness/recovery behavior.
#include <gtest/gtest.h>

#include "baselines/columbia_ipip.hpp"
#include "baselines/ibm_lsrr.hpp"
#include "baselines/matsushita_iptp.hpp"
#include "baselines/sony_vip.hpp"
#include "baselines/sunshine_postel.hpp"
#include "scenario/metrics.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using namespace baselines;
using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

// A small internetwork: a backbone joining `sites` site routers, each
// with a LAN 10.<site+1>.0.0/24 (router at .1).
struct Sites {
  Topology topo;
  std::vector<node::Router*> routers;
  std::vector<net::Link*> lans;
  net::Link* backbone;

  explicit Sites(int sites) {
    backbone = &topo.add_link("backbone", sim::millis(2));
    for (int i = 0; i < sites; ++i) {
      auto& r = topo.add_router("R" + std::to_string(i));
      topo.connect(r, *backbone, net::IpAddress::of(10, 0, 0, std::uint8_t(i + 1)),
                   24);
      auto& lan =
          topo.add_link("lan" + std::to_string(i), sim::millis(1));
      topo.connect(r, lan, net::IpAddress::of(10, std::uint8_t(i + 1), 0, 1),
                   24);
      routers.push_back(&r);
      lans.push_back(&lan);
    }
  }

  node::Host& add_host(const std::string& name, int site, std::uint8_t last) {
    auto& h = topo.add_host(name);
    topo.connect(h, *lans[std::size_t(site)],
                 net::IpAddress::of(10, std::uint8_t(site + 1), 0, last), 24);
    return h;
  }

  void finish() { topo.install_static_routes(); }

  /// Physically move a (plain) host to another site's LAN: reattach,
  /// flush ARP, and point its default route at the new site's router —
  /// the bookkeeping a real DHCP-era move entails and that MHRP's
  /// MobileHost does for itself.
  void move_host(node::Host& h, int site) {
    net::Interface& iface = *h.interfaces().front();
    lans[std::size_t(site)]->attach(iface);
    h.arp_table(iface).clear();
    h.routing_table().install(
        {net::Prefix(net::kUnspecified, 0),
         net::IpAddress::of(10, std::uint8_t(site + 1), 0, 1), &iface, 1,
         routing::RouteKind::kStatic});
  }

  net::Interface& lan_iface(int site) {
    // The router's second interface is its LAN side.
    return *routers[std::size_t(site)]->interfaces()[1];
  }
};

// ---- Sunshine–Postel ----

struct SpWorld {
  Sites w{4};
  node::Host* db_host;
  node::Host* mobile;
  node::Host* sender;
  std::unique_ptr<SpDatabase> db;
  std::unique_ptr<SpForwarder> fwd1;
  std::unique_ptr<SpForwarder> fwd2;
  std::unique_ptr<SpSender> sp_sender;
  std::unique_ptr<SpMobileNode> sp_mobile;

  SpWorld() {
    db_host = &w.add_host("DB", 0, 10);
    sender = &w.add_host("C", 1, 10);
    // The mobile host's permanent address is from site 3's LAN, but it is
    // physically visiting site 2.
    mobile = &w.topo.add_host("M");
    w.topo.connect(*mobile, *w.lans[2], ip("10.4.0.77"), 24);
    w.finish();
    db = std::make_unique<SpDatabase>(*db_host);
    fwd1 = std::make_unique<SpForwarder>(*w.routers[2], w.lan_iface(2));
    fwd2 = std::make_unique<SpForwarder>(*w.routers[3], w.lan_iface(3));
    sp_sender = std::make_unique<SpSender>(*sender, db_host->primary_address());
    sp_mobile =
        std::make_unique<SpMobileNode>(*mobile, db_host->primary_address());
    fwd1->add_visitor(ip("10.4.0.77"));
    sp_mobile->register_forwarder(w.routers[2]->primary_address());
    w.topo.sim().run_for(sim::seconds(2));
  }
};

TEST(SunshinePostel, QueryThenSourceRoutedDelivery) {
  SpWorld sp;
  int delivered = 0;
  sp.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++delivered; });
  sp.sp_sender->send(ip("10.4.0.77"), 7000, {1, 2, 3});
  sp.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sp.db->stats().queries, 1u);
  EXPECT_EQ(sp.fwd1->stats().delivered, 1u);

  // Cached now: a second send must not touch the global database.
  sp.sp_sender->send(ip("10.4.0.77"), 7000, {4});
  sp.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(sp.db->stats().queries, 1u);
}

TEST(SunshinePostel, MoveTriggersUnreachableRequeryRetransmit) {
  SpWorld sp;
  int delivered = 0;
  sp.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++delivered; });
  sp.sp_sender->send(ip("10.4.0.77"), 7000, {1});
  sp.w.topo.sim().run_for(sim::seconds(5));
  ASSERT_EQ(delivered, 1);

  // M moves to site 3: new forwarder, global database updated, old
  // forwarder forgets it.
  sp.fwd1->remove_visitor(ip("10.4.0.77"));
  sp.w.move_host(*sp.mobile, 3);
  sp.fwd2->add_visitor(ip("10.4.0.77"));
  sp.sp_mobile->register_forwarder(sp.w.routers[3]->primary_address());
  sp.w.topo.sim().run_for(sim::seconds(2));

  // The sender's cached forwarder is stale: IEN 135 recovery kicks in.
  sp.sp_sender->send(ip("10.4.0.77"), 7000, {2});
  sp.w.topo.sim().run_for(sim::seconds(10));
  EXPECT_EQ(delivered, 2);
  EXPECT_GE(sp.fwd1->stats().unreachable_returned, 1u);
  EXPECT_GE(sp.sp_sender->stats().retransmits, 1u);
  EXPECT_EQ(sp.db->stats().queries, 2u);
}

// ---- Columbia IPIP ----

TEST(ColumbiaIpip, EncapsulationAddsTwentyFourBytes) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = ip("10.1.0.10");
  h.dst = ip("10.2.0.77");
  net::Packet inner(h, std::vector<std::uint8_t>(20, 1));
  auto outer = ipip_encapsulate(inner, ip("10.0.0.1"), ip("10.0.0.2"));
  EXPECT_EQ(outer.wire_size(), inner.wire_size() + 24);
  auto back = ipip_decapsulate(outer);
  EXPECT_EQ(back.header(), inner.header());
  EXPECT_EQ(back.payload(), inner.payload());
}

struct ColumbiaWorld {
  Sites w{3};
  node::Host* mobile;
  node::Host* sender;
  std::unique_ptr<Msr> msr1;  // home MSR, site 1
  std::unique_ptr<Msr> msr2;  // other campus MSR, site 2
  std::unique_ptr<ColumbiaMobileHost> cm;

  ColumbiaWorld() {
    sender = &w.add_host("C", 0, 10);
    mobile = &w.topo.add_host("M");
    // Home address on site 1's LAN, physically at site 2.
    w.topo.connect(*mobile, *w.lans[2], ip("10.2.0.77"), 24);
    w.finish();
    msr1 = std::make_unique<Msr>(*w.routers[1], w.lan_iface(1));
    msr2 = std::make_unique<Msr>(*w.routers[2], w.lan_iface(2));
    msr1->add_campus_host(ip("10.2.0.77"));
    msr1->set_peers({w.routers[2]->primary_address()});
    msr2->set_peers({w.routers[1]->primary_address()});
    msr2->attach_visitor(ip("10.2.0.77"));
  }
};

TEST(ColumbiaIpip, HomeMsrDiscoversServingMsrByMulticastThenTunnels) {
  ColumbiaWorld cw;
  int delivered = 0;
  scenario::FlowRecorder recorder(*cw.mobile);
  cw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++delivered; });
  std::vector<std::uint8_t> data{1, 2};
  cw.sender->send_udp(ip("10.2.0.77"), 5555, 7000, data);
  cw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(cw.msr1->stats().queries_multicast, 1u);  // fan-out happened
  EXPECT_EQ(cw.msr2->stats().queries_answered, 1u);
  EXPECT_EQ(cw.msr2->stats().delivered, 1u);
  // IP-within-IP: 24 bytes on the tunneled leg.
  EXPECT_EQ(recorder.total().overhead_bytes.max, 24.0);

  // Second packet: serving MSR cached, no new multicast.
  const auto fanout = cw.msr1->stats().queries_multicast;
  cw.sender->send_udp(ip("10.2.0.77"), 5555, 7000, data);
  cw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(cw.msr1->stats().queries_multicast, fanout);
}

TEST(ColumbiaIpip, OffCampusTunnelsToTemporaryAddressViaHomeMsr) {
  ColumbiaWorld cw;
  // M leaves the campus for site 0's network and obtains a temp address.
  cw.msr2->detach_visitor(ip("10.2.0.77"));
  cw.w.move_host(*cw.mobile, 0);
  ColumbiaMobileHost cm(*cw.mobile, cw.w.routers[1]->primary_address());
  cm.register_offsite(ip("10.1.0.200"));
  cw.msr1->set_offsite_address(ip("10.2.0.77"), ip("10.1.0.200"));
  // The temp address must be reachable: give the site-0 router a host
  // route (stands in for the visited network's normal address assignment).
  cw.w.routers[0]->routing_table().install(
      {net::Prefix::host(ip("10.1.0.200")), net::kUnspecified,
       cw.w.routers[0]->interfaces()[1].get(), 1,
       routing::RouteKind::kHostSpecific});

  int delivered = 0;
  cw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++delivered; });
  std::vector<std::uint8_t> data{3};
  cw.sender->send_udp(ip("10.2.0.77"), 5555, 7000, data);
  cw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(cw.msr1->stats().tunnels_built, 1u);
}

// ---- Sony VIP ----

struct VipWorld {
  Sites w{3};
  node::Host* mobile_node;
  node::Host* sender_node;
  std::unique_ptr<VipRouter> vr0, vr1, vr2;  // vr1 = home router of M
  std::unique_ptr<VipHost> m;
  std::unique_ptr<VipHost> c;

  VipWorld() {
    sender_node = &w.add_host("C", 0, 10);
    mobile_node = &w.add_host("M", 1, 77);  // at home initially
    w.finish();
    vr0 = std::make_unique<VipRouter>(*w.routers[0]);
    vr1 = std::make_unique<VipRouter>(*w.routers[1]);
    vr2 = std::make_unique<VipRouter>(*w.routers[2]);
    vr0->set_neighbors({w.routers[1]->primary_address(),
                        w.routers[2]->primary_address()});
    vr1->set_neighbors({w.routers[0]->primary_address(),
                        w.routers[2]->primary_address()});
    vr2->set_neighbors({w.routers[0]->primary_address(),
                        w.routers[1]->primary_address()});
    vr1->add_home_host(ip("10.2.0.77"));
    m = std::make_unique<VipHost>(*mobile_node,
                                  w.routers[1]->primary_address());
    c = std::make_unique<VipHost>(*sender_node,
                                  w.routers[0]->primary_address());
  }
};

TEST(SonyVip, TwentyEightBytesEvenAtHome) {
  VipWorld vw;
  int got = 0;
  vw.m->on_data = [&](net::IpAddress, const std::vector<std::uint8_t>&) {
    ++got;
  };
  scenario::FlowRecorder recorder(*vw.mobile_node);
  vw.c->send(ip("10.2.0.77"), 7000, {1, 2, 3});
  vw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(got, 1);
  // The paper's zero-overhead-at-home contrast: VIP pays 28 bytes always.
  EXPECT_EQ(recorder.total().overhead_bytes.max, 28.0);
}

TEST(SonyVip, MovedHostReachedThroughHomeCompletionAndTempAddress) {
  VipWorld vw;
  // M moves to site 2 and acquires a temporary address there.
  vw.w.move_host(*vw.mobile_node, 2);
  vw.m->move_to_physical(ip("10.3.0.200"));
  vw.w.routers[2]->routing_table().install(
      {net::Prefix::host(ip("10.3.0.200")), net::kUnspecified,
       vw.w.routers[2]->interfaces()[1].get(), 1,
       routing::RouteKind::kHostSpecific});
  vw.w.topo.sim().run_for(sim::seconds(2));

  int got = 0;
  vw.m->on_data = [&](net::IpAddress, const std::vector<std::uint8_t>&) {
    ++got;
  };
  vw.c->send(ip("10.2.0.77"), 7000, {9});
  vw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(got, 1);
  EXPECT_GE(vw.vr1->stats().completed, 1u);  // home router filled in temp
}

TEST(SonyVip, FloodingInvalidatesRouterCaches) {
  VipWorld vw;
  // Seed a stale cache at vr0 by hand, then register a move at home.
  vw.vr0->set_neighbors({vw.w.routers[1]->primary_address()});
  vw.vr1->set_neighbors({vw.w.routers[0]->primary_address(),
                         vw.w.routers[2]->primary_address()});
  // Learn a binding into vr0's opportunistic cache via traffic: simulate
  // by flood from home and check erasure of pre-seeded entries instead.
  vw.m->move_to_physical(ip("10.3.0.200"));
  vw.w.topo.sim().run_for(sim::seconds(2));
  EXPECT_GE(vw.vr1->stats().floods_sent, 1u);
  // Every router saw (and forwarded) the flood exactly once.
  EXPECT_GE(vw.vr0->stats().invalidated + vw.vr2->stats().invalidated, 2u);
}

TEST(SonyVip, MisdeliveryDiscardsReturnsErrorAndRetransmits) {
  VipWorld vw;
  // Another host N sits at site 2 holding the address M used to have.
  auto& n_node = vw.w.add_host("N", 2, 50);
  vw.w.move_host(n_node, 2);  // added post-finish(): give it its routes
  VipHost n(n_node, vw.w.routers[2]->primary_address());
  // C's cache is stale: it maps M's VIP to N's address.
  // Seed by constructing the situation: C learned M@10.3.0.50 earlier.
  // (Direct cache seeding through the received-traffic path.)
  vw.w.move_host(*vw.mobile_node, 2);
  vw.m->move_to_physical(ip("10.3.0.200"));  // register from the new spot
  vw.w.routers[2]->routing_table().install(
      {net::Prefix::host(ip("10.3.0.200")), net::kUnspecified,
       vw.w.routers[2]->interfaces()[1].get(), 1,
       routing::RouteKind::kHostSpecific});
  vw.w.topo.sim().run_for(sim::seconds(2));

  // Hand-poison C's cache via a crafted received packet is intrusive;
  // instead exercise the error path directly: N receives a VIP packet
  // whose vip_dst is not N's VIP.
  int got = 0;
  vw.m->on_data = [&](net::IpAddress, const std::vector<std::uint8_t>&) {
    ++got;
  };
  // Craft: C sends to M's VIP but with a stale physical of N.
  VipHeader vh;
  vh.vip_src = vw.c->vip();
  vh.vip_dst = ip("10.2.0.77");
  auto transport = net::encode_udp({kVipControlPort, 7000}, {{7}});
  net::IpHeader iph;
  iph.protocol = net::to_u8(net::IpProto::kVip);
  iph.src = vw.c->physical();
  iph.dst = ip("10.3.0.50");  // N's address: stale binding
  net::Packet p(iph, vh.encode(transport));
  p.set_base_payload_size(transport.size());
  // Make C's sender state believe it sent this (for retransmission).
  vw.c->send(ip("10.2.0.77"), 7000, {7});  // primes last_sent via home path
  vw.w.topo.sim().run_for(sim::seconds(3));
  const auto got_before_misdelivery = got;
  vw.sender_node->send_ip(std::move(p));
  vw.w.topo.sim().run_for(sim::seconds(5));

  EXPECT_GE(n.stats().misdelivered_discards, 1u);
  EXPECT_GE(vw.c->stats().errors_received, 1u);
  EXPECT_GE(vw.c->stats().retransmits, 1u);
  EXPECT_GT(got, got_before_misdelivery);  // retransmission arrived at M
}

// ---- Matsushita IPTP ----

TEST(MatsushitaIptp, EncapsulationAddsFortyBytes) {
  net::IpHeader h;
  h.protocol = net::to_u8(net::IpProto::kUdp);
  h.src = ip("10.1.0.10");
  h.dst = ip("10.2.0.77");
  net::Packet inner(h, std::vector<std::uint8_t>(20, 1));
  auto outer = iptp_encapsulate(inner, ip("10.0.0.1"), ip("10.0.0.2"),
                                ip("10.2.0.77"), false);
  EXPECT_EQ(outer.wire_size(), inner.wire_size() + 40);
  auto d = iptp_decapsulate(outer);
  EXPECT_EQ(d.inner.header(), inner.header());
  EXPECT_EQ(d.header.mobile_host, ip("10.2.0.77"));
}

struct IptpWorld {
  Sites w{3};
  node::Host* mobile;
  node::Host* sender;
  std::unique_ptr<Pfs> pfs;
  std::unique_ptr<IptpMobileHost> im;

  IptpWorld() {
    sender = &w.add_host("C", 0, 10);
    mobile = &w.topo.add_host("M");
    // Home on site 1, visiting site 2 with a temp address.
    w.topo.connect(*mobile, *w.lans[2], ip("10.2.0.77"), 24);
    w.finish();
    pfs = std::make_unique<Pfs>(*w.routers[1]);
    pfs->add_home_host(ip("10.2.0.77"));
    im = std::make_unique<IptpMobileHost>(*mobile,
                                          w.routers[1]->primary_address());
    im->move_to(ip("10.3.0.200"));
    w.routers[2]->routing_table().install(
        {net::Prefix::host(ip("10.3.0.200")), net::kUnspecified,
         w.routers[2]->interfaces()[1].get(), 1,
         routing::RouteKind::kHostSpecific});
    w.topo.sim().run_for(sim::seconds(2));
  }
};

TEST(MatsushitaIptp, ForwardingModeTrianglesThroughPfs) {
  IptpWorld iw;
  int delivered = 0;
  scenario::FlowRecorder recorder(*iw.mobile);
  recorder.set_filter([](const net::Packet& p) {
    return p.header().dst == ip("10.2.0.77");
  });
  iw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++delivered; });
  std::vector<std::uint8_t> data{1};
  iw.sender->send_udp(ip("10.2.0.77"), 5555, 7000, data);
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(iw.pfs->stats().tunnels_built, 1u);
  EXPECT_EQ(iw.im->tunnels_received(), 1u);
  EXPECT_EQ(recorder.total().overhead_bytes.max, 40.0);
}

TEST(MatsushitaIptp, AutonomousModeBypassesPfs) {
  IptpWorld iw;
  int delivered = 0;
  iw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++delivered; });
  IptpAutonomousSender sender(*iw.sender);
  sender.learn_binding(ip("10.2.0.77"), ip("10.3.0.200"));
  sender.send(ip("10.2.0.77"), 7000, {1});
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(iw.pfs->stats().tunnels_built, 0u);  // no triangle
}

TEST(MatsushitaIptp, ReturnHomeStopsForwarding) {
  IptpWorld iw;
  iw.im->return_home();
  iw.w.topo.sim().run_for(sim::seconds(2));
  EXPECT_FALSE(iw.pfs->temporary_address(ip("10.2.0.77")).has_value());
}

// ---- IBM LSRR ----

struct IbmWorld {
  Sites w{3};
  node::Host* mobile;
  node::Host* corr;
  std::unique_ptr<BaseStation> bs1;
  std::unique_ptr<BaseStation> bs2;
  std::unique_ptr<IbmMobileHost> im;

  IbmWorld() {
    corr = &w.add_host("C", 0, 10);
    mobile = &w.topo.add_host("M");
    // Home on site 1's numbering, visiting site 2.
    w.topo.connect(*mobile, *w.lans[2], ip("10.2.0.77"), 24);
    w.finish();
    bs1 = std::make_unique<BaseStation>(*w.routers[2], w.lan_iface(2));
    bs2 = std::make_unique<BaseStation>(*w.routers[0], w.lan_iface(0));
    bs1->add_visitor(ip("10.2.0.77"));
    bs2->add_known_mobile(ip("10.2.0.77"));
    im = std::make_unique<IbmMobileHost>(*mobile);
    im->set_base_station(w.routers[2]->primary_address());
  }
};

TEST(IbmLsrr, RecordedRouteEnablesRepliesThroughBaseStation) {
  IbmWorld iw;
  IbmCorrespondent corr(*iw.corr);
  int at_corr = 0;
  int at_mobile = 0;
  iw.corr->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                              net::Interface&) { ++at_corr; });
  iw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++at_mobile; });
  scenario::FlowRecorder recorder(*iw.corr);

  iw.im->send(iw.corr->primary_address(), 7000, {1});
  iw.w.topo.sim().run_for(sim::seconds(5));
  ASSERT_EQ(at_corr, 1);
  ASSERT_TRUE(corr.has_route_to(ip("10.2.0.77")));
  // 8 bytes of LSRR option on the mobile→sender leg too (§7: "8 bytes
  // must also be added to each packet sent FROM a mobile host").
  EXPECT_EQ(recorder.total().overhead_bytes.max, 8.0);

  corr.send(ip("10.2.0.77"), 7000, {2});
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(at_mobile, 1);
  EXPECT_GE(iw.bs1->stats().relayed_inbound, 1u);
}

TEST(IbmLsrr, StaleRouteFailsUntilMobileSendsAgain) {
  IbmWorld iw;
  IbmCorrespondent corr(*iw.corr);
  int at_mobile = 0;
  iw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++at_mobile; });
  iw.corr->bind_udp(7000, [](const net::UdpDatagram&, const net::IpHeader&,
                             net::Interface&) {});
  iw.im->send(iw.corr->primary_address(), 7000, {1});
  iw.w.topo.sim().run_for(sim::seconds(5));
  ASSERT_TRUE(corr.has_route_to(ip("10.2.0.77")));

  // M moves to BS2 (site 0) without the correspondent knowing.
  iw.bs1->remove_visitor(ip("10.2.0.77"));
  iw.w.move_host(*iw.mobile, 0);
  iw.bs2->add_visitor(ip("10.2.0.77"));
  iw.im->set_base_station(iw.w.routers[0]->primary_address());

  corr.send(ip("10.2.0.77"), 7000, {2});
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(at_mobile, 0);  // stale route: lost
  EXPECT_GE(iw.bs1->stats().unreachable_returned, 1u);

  // "until some application on that host needs to send a normal IP
  // packet to that destination" — M sends, the correspondent relearns.
  iw.im->send(iw.corr->primary_address(), 7000, {3});
  iw.w.topo.sim().run_for(sim::seconds(5));
  corr.send(ip("10.2.0.77"), 7000, {4});
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(at_mobile, 1);
}

TEST(IbmLsrr, BrokenStacksIgnoreTheOptionAndRepliesDie) {
  // The paper's §7 criticism: many deployed stacks did not reverse LSRR.
  IbmWorld iw;
  IbmCorrespondent corr(*iw.corr, /*faithful=*/false);
  int at_mobile = 0;
  iw.mobile->bind_udp(7000, [&](const net::UdpDatagram&, const net::IpHeader&,
                                net::Interface&) { ++at_mobile; });
  iw.corr->bind_udp(7000, [](const net::UdpDatagram&, const net::IpHeader&,
                             net::Interface&) {});
  iw.im->send(iw.corr->primary_address(), 7000, {1});
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_FALSE(corr.has_route_to(ip("10.2.0.77")));
  corr.send(ip("10.2.0.77"), 7000, {2});
  iw.w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(at_mobile, 0);  // reply went to the (empty) home network
}

TEST(IbmLsrr, OptionsForceRoutersOffTheFastPath) {
  IbmWorld iw;
  IbmCorrespondent corr(*iw.corr);
  iw.corr->bind_udp(7000, [](const net::UdpDatagram&, const net::IpHeader&,
                             net::Interface&) {});
  const auto slow_before = iw.w.routers[2]->counters().options_slow_path;
  iw.im->send(iw.corr->primary_address(), 7000, {1});
  iw.w.topo.sim().run_for(sim::seconds(5));
  std::uint64_t slow_total = 0;
  for (auto* r : iw.w.routers) slow_total += r->counters().options_slow_path;
  EXPECT_GT(slow_total, slow_before);
}

}  // namespace
}  // namespace mhrp
