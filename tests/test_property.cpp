// Property-style tests: parameterized sweeps asserting the protocol's
// invariants across world shapes, movement sequences, and configuration
// points rather than single scripted scenarios.
//
//  * reachability: wherever a mobile host registers, a correspondent's
//    ping reaches it — including under randomized movement;
//  * overhead law: every tunneled packet carries exactly 8 + 4k octets
//    of MHRP overhead, k = previous-source list length, bounded by the
//    configured maximum;
//  * cache convergence: after a move, a bounded number of packets
//    repairs every cache agent on the path;
//  * home transparency: at home, zero overhead, always.
#include <gtest/gtest.h>

#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"

namespace mhrp {
namespace {

using scenario::MhrpWorld;
using scenario::MhrpWorldOptions;

struct WorldShape {
  int foreign_sites;
  int mobile_hosts;
  int correspondents;
  std::size_t max_list_length;
  bool forwarding_pointers;
};

class MhrpWorldProperty : public ::testing::TestWithParam<WorldShape> {};

bool ping_ok(MhrpWorld& w, node::Host& from, net::IpAddress to) {
  bool replied = false;
  from.ping(to, [&](const node::Host::PingResult& r) { replied = r.replied; },
            32, sim::seconds(8));
  w.topo.sim().run_for(sim::seconds(10));
  return replied;
}

TEST_P(MhrpWorldProperty, EveryMobileReachableWhereverItRegisters) {
  const WorldShape shape = GetParam();
  MhrpWorldOptions options;
  options.foreign_sites = shape.foreign_sites;
  options.mobile_hosts = shape.mobile_hosts;
  options.correspondents = shape.correspondents;
  options.protocol.max_list_length = shape.max_list_length;
  options.protocol.forwarding_pointers = shape.forwarding_pointers;
  MhrpWorld w(options);

  for (int i = 0; i < shape.mobile_hosts; ++i) {
    ASSERT_TRUE(w.move_and_register(i, i % shape.foreign_sites)) << i;
  }
  for (int i = 0; i < shape.mobile_hosts; ++i) {
    node::Host& corr = *w.correspondents[std::size_t(i) %
                                         w.correspondents.size()];
    EXPECT_TRUE(ping_ok(w, corr, w.mobile_address(i))) << "mobile " << i;
  }
}

TEST_P(MhrpWorldProperty, RandomizedWalkNeverStrandsTheMobileHost) {
  const WorldShape shape = GetParam();
  MhrpWorldOptions options;
  options.foreign_sites = shape.foreign_sites;
  options.mobile_hosts = 1;
  options.correspondents = 1;
  options.protocol.max_list_length = shape.max_list_length;
  options.protocol.forwarding_pointers = shape.forwarding_pointers;
  options.protocol.seed = 7 + static_cast<std::uint64_t>(shape.foreign_sites);
  MhrpWorld w(options);
  util::Rng rng(options.protocol.seed);

  for (int step = 0; step < 6; ++step) {
    // Random site, occasionally home.
    const int site = rng.chance(0.2)
                         ? -1
                         : static_cast<int>(rng.index(
                               std::size_t(shape.foreign_sites)));
    ASSERT_TRUE(w.move_and_register(0, site)) << "step " << step;
    EXPECT_TRUE(ping_ok(w, *w.correspondents[0], w.mobile_address(0)))
        << "step " << step << " site " << site;
  }
}

TEST_P(MhrpWorldProperty, OverheadIsEightPlusFourPerListEntry) {
  const WorldShape shape = GetParam();
  MhrpWorldOptions options;
  options.foreign_sites = shape.foreign_sites;
  options.mobile_hosts = 1;
  options.correspondents = 1;
  options.protocol.max_list_length = shape.max_list_length;
  options.protocol.forwarding_pointers = shape.forwarding_pointers;
  MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));

  scenario::FlowRecorder recorder(*w.mobiles[0]);
  recorder.set_filter([&](const net::Packet& p) {
    // Exclude link-local deliveries (the foreign agent's ConnectAck is
    // handed over on the cell itself, legitimately untunneled).
    return p.header().dst == w.mobile_address(0) && p.hop_count() > 1;
  });
  // A burst of pings with occasional moves in between.
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(ping_ok(w, *w.correspondents[0], w.mobile_address(0)));
    if (round + 1 < shape.foreign_sites) {
      ASSERT_TRUE(w.move_and_register(0, round + 1));
    }
  }
  const auto& overhead = recorder.total().overhead_bytes;
  ASSERT_GT(overhead.count, 0u);
  // Law: 8 + 4k, with k bounded by max_list_length.
  EXPECT_GE(overhead.min, 8.0);
  EXPECT_LE(overhead.max, 8.0 + 4.0 * double(shape.max_list_length));
  // Every observation is ≡ 0 (mod 4).
  EXPECT_EQ(static_cast<long>(overhead.min) % 4, 0);
  EXPECT_EQ(static_cast<long>(overhead.max) % 4, 0);
}

TEST_P(MhrpWorldProperty, CachesConvergeAfterMove) {
  const WorldShape shape = GetParam();
  if (shape.foreign_sites < 2) GTEST_SKIP();
  MhrpWorldOptions options;
  options.foreign_sites = shape.foreign_sites;
  options.mobile_hosts = 1;
  options.correspondents = shape.correspondents;
  options.protocol.max_list_length = shape.max_list_length;
  options.protocol.forwarding_pointers = shape.forwarding_pointers;
  MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));

  // Warm every correspondent's cache.
  for (auto* corr : w.correspondents) {
    ASSERT_TRUE(ping_ok(w, *corr, w.mobile_address(0)));
  }
  ASSERT_TRUE(w.move_and_register(0, 1));

  // One packet from each correspondent must repair its own cache.
  for (std::size_t c = 0; c < w.correspondents.size(); ++c) {
    EXPECT_TRUE(ping_ok(w, *w.correspondents[c], w.mobile_address(0)));
    auto entry = w.corr_agents[c]->cache().peek(w.mobile_address(0));
    ASSERT_TRUE(entry.has_value()) << "correspondent " << c;
    EXPECT_EQ(*entry, w.fa_address(1)) << "correspondent " << c;
  }
}

TEST_P(MhrpWorldProperty, ZeroOverheadAtHomeAlways) {
  const WorldShape shape = GetParam();
  MhrpWorldOptions options;
  options.foreign_sites = shape.foreign_sites;
  options.mobile_hosts = 1;
  options.correspondents = 1;
  options.protocol.max_list_length = shape.max_list_length;
  options.protocol.forwarding_pointers = shape.forwarding_pointers;
  MhrpWorld w(options);
  // Roam, then come home — history must not leave residual overhead.
  ASSERT_TRUE(w.move_and_register(0, 0));
  ASSERT_TRUE(ping_ok(w, *w.correspondents[0], w.mobile_address(0)));
  ASSERT_TRUE(w.move_and_register(0, -1));
  // First packet home may still take a stale tunnel; it repairs S.
  ASSERT_TRUE(ping_ok(w, *w.correspondents[0], w.mobile_address(0)));

  scenario::FlowRecorder recorder(*w.mobiles[0]);
  recorder.set_filter([&](const net::Packet& p) {
    return p.header().dst == w.mobile_address(0);
  });
  ASSERT_TRUE(ping_ok(w, *w.correspondents[0], w.mobile_address(0)));
  ASSERT_GT(recorder.total().overhead_bytes.count, 0u);
  EXPECT_EQ(recorder.total().overhead_bytes.max, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MhrpWorldProperty,
    ::testing::Values(WorldShape{1, 1, 1, 8, true},
                      WorldShape{2, 1, 1, 8, true},
                      WorldShape{3, 2, 2, 8, true},
                      WorldShape{3, 1, 3, 2, true},
                      WorldShape{4, 3, 2, 8, false},
                      WorldShape{5, 1, 1, 1, false},
                      WorldShape{6, 4, 3, 4, true}),
    [](const ::testing::TestParamInfo<WorldShape>& info) {
      const WorldShape& s = info.param;
      return "f" + std::to_string(s.foreign_sites) + "m" +
             std::to_string(s.mobile_hosts) + "c" +
             std::to_string(s.correspondents) + "k" +
             std::to_string(s.max_list_length) +
             (s.forwarding_pointers ? "ptr" : "noptr");
    });

// ---- Loop-contraction property (§5.3) over loop size and list cap ----

struct LoopCase {
  int loop_size;
  std::size_t max_list;
};

class LoopContraction : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopContraction, EveryLoopEventuallyDissolves) {
  const LoopCase param = GetParam();
  scenario::Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  const net::IpAddress mh = net::IpAddress::parse("10.99.0.77");

  std::vector<node::Router*> routers;
  std::vector<std::unique_ptr<core::MhrpAgent>> agents;
  for (int i = 0; i < param.loop_size; ++i) {
    auto& r = topo.add_router("C" + std::to_string(i));
    topo.connect(r, lan, net::IpAddress::of(10, 9, 0, std::uint8_t(i + 1)),
                 24);
    routers.push_back(&r);
    core::AgentConfig config;
    config.cache_agent = true;
    config.max_list_length = param.max_list;
    config.update_min_interval = sim::millis(10);
    agents.push_back(std::make_unique<core::MhrpAgent>(r, config));
  }
  auto& injector = topo.add_host("inj");
  topo.connect(injector, lan, net::IpAddress::parse("10.9.0.100"), 24);
  topo.install_static_routes();
  for (int i = 0; i < param.loop_size; ++i) {
    agents[std::size_t(i)]->cache().update(
        mh, routers[std::size_t((i + 1) % param.loop_size)]->primary_address());
  }

  auto has_cycle = [&] {
    for (std::size_t start = 0; start < agents.size(); ++start) {
      std::set<std::size_t> path{start};
      std::size_t cursor = start;
      while (true) {
        auto next = agents[cursor]->cache().peek(mh);
        if (!next.has_value()) break;
        int idx = -1;
        for (std::size_t i = 0; i < routers.size(); ++i) {
          if (routers[i]->primary_address() == *next) idx = int(i);
        }
        if (idx < 0) break;
        if (!path.insert(std::size_t(idx)).second) return true;
        cursor = std::size_t(idx);
      }
    }
    return false;
  };

  auto inject = [&] {
    core::MhrpHeader h;
    h.orig_protocol = net::to_u8(net::IpProto::kUdp);
    h.mobile_host = mh;
    util::ByteWriter w;
    h.encode(w);
    std::vector<std::uint8_t> transport(12, 0xEE);
    auto udp = net::encode_udp({1, 2}, transport);
    w.bytes(udp);
    net::IpHeader iph;
    iph.protocol = net::to_u8(net::IpProto::kMhrp);
    iph.src = injector.primary_address();
    iph.dst = routers[0]->primary_address();
    iph.ttl = 255;
    injector.send_ip(net::Packet(iph, w.take()));
  };

  ASSERT_TRUE(has_cycle());
  int injections = 0;
  // §5.3: each packet contracts the loop by roughly a factor of the list
  // size per cycle; TTL death only defers to the next packet.
  for (; injections < 50 && has_cycle(); ++injections) {
    inject();
    topo.sim().run_for(sim::seconds(5));
  }
  EXPECT_FALSE(has_cycle()) << "loop survived " << injections << " probes";
  std::uint64_t detected = 0;
  for (const auto& a : agents) detected += a->stats().loops_detected;
  EXPECT_GE(detected, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LoopContraction,
    ::testing::Values(LoopCase{2, 8}, LoopCase{3, 8}, LoopCase{4, 2},
                      LoopCase{6, 2}, LoopCase{8, 3}, LoopCase{10, 2},
                      LoopCase{12, 4}, LoopCase{16, 2}),
    [](const ::testing::TestParamInfo<LoopCase>& info) {
      return "L" + std::to_string(info.param.loop_size) + "K" +
             std::to_string(info.param.max_list);
    });

}  // namespace
}  // namespace mhrp
