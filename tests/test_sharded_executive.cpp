// ShardedExecutive: the conservative multi-core executive (DESIGN.md
// §13). The contract under test, in order of importance:
//
//  * a one-shard ShardedExecutive executes the exact event sequence of
//    the single-threaded Simulator — ScaleWorld replay digests are
//    byte-identical between the two;
//  * for a FIXED shard count, runs are byte-identical (the window
//    protocol and the fixed inbox drain order make sequence assignment
//    deterministic), including with the fault plane armed;
//  * a cross-shard post() whose timestamp lands inside the still-open
//    window is a hard LookaheadViolation — never a silent clamp into
//    the past (clamping would make results depend on worker timing);
//  * cancel() across shards is rejected (returns false, same answer as
//    an already-fired event) rather than racing a foreign queue.
//
// Plus the HookHandle RAII registration that replaced Topology's old
// index-token hook scheme, which shares the {slot, generation} design
// of sim::EventHandle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/scale_world.hpp"
#include "scenario/topology.hpp"
#include "scenario/tracer.hpp"
#include "sim/executive.hpp"
#include "sim/sharded_executive.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace mhrp::sim {
namespace {

TEST(ShardedExecutive, ConstructorValidates) {
  EXPECT_THROW(ShardedExecutive(0), std::invalid_argument);
  EXPECT_THROW(ShardedExecutive(2, 0), std::invalid_argument);
  EXPECT_NO_THROW(ShardedExecutive(4, millis(1)));
}

TEST(ShardedExecutive, RunsLocalEventsInTimeOrder) {
  ShardedExecutive exec(1);
  std::vector<int> fired;
  (void)exec.at(millis(2), [&] { fired.push_back(2); });
  (void)exec.at(millis(1), [&] { fired.push_back(1); });
  (void)exec.at(millis(1), [&] { fired.push_back(10); });  // FIFO at ties
  EXPECT_EQ(exec.run_until(millis(5)), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 10, 2}));
  EXPECT_EQ(exec.now(), millis(5));  // drained run leaves clock at deadline
  EXPECT_EQ(exec.pending_events(), 0u);
}

TEST(ShardedExecutive, CrossShardPostRunsOnTargetShard) {
  ShardedExecutive exec(2, millis(1));
  std::uint32_t observed_shard = 99;
  Time observed_at = -1;
  // Quiesced posts go straight to the target queue; this one arms a
  // mid-run cross-shard post back the other way.
  exec.post(1, millis(1), [&] {
    exec.post(0, exec.now() + exec.lookahead(), [&] {
      observed_shard = exec.shard_id();
      observed_at = exec.now();
    });
  });
  (void)exec.run_until(millis(10));
  EXPECT_EQ(observed_shard, 0u);
  EXPECT_EQ(observed_at, millis(2));
}

TEST(ShardedExecutive, PostAtExactlyWindowEndIsLegal) {
  // From an event at time t in window [T, E), posting at now+lookahead
  // can land exactly on E — the first instant the target shard has not
  // yet committed to. That boundary must be accepted.
  ShardedExecutive exec(2, millis(1));
  bool ran = false;
  exec.post(0, 0, [&] {
    exec.post(1, exec.now() + exec.lookahead(), [&] { ran = true; });
  });
  (void)exec.run_until(millis(10));
  EXPECT_TRUE(ran);
}

TEST(ShardedExecutive, LookaheadViolationIsHardErrorNotClamp) {
  // A cross-shard send timestamped inside the still-open window would
  // have to arrive "in the past" of a shard that may already have run
  // beyond it. The executive refuses — LookaheadViolation surfaces on
  // the driver — rather than clamping, which would silently order the
  // event by worker timing instead of by simulated time.
  ShardedExecutive exec(2, millis(1));
  exec.post(0, 0, [&] {
    exec.post(1, exec.now() + 1, [] {});  // 1us ahead, window is 1ms wide
  });
  try {
    (void)exec.run_until(millis(10));
    FAIL() << "expected LookaheadViolation";
  } catch (const LookaheadViolation& v) {
    EXPECT_EQ(v.when(), 1);
    EXPECT_EQ(v.window_end(), millis(1));
    EXPECT_NE(std::string(v.what()).find("lookahead"), std::string::npos);
  }
}

TEST(ShardedExecutive, QuiescedPostIsNotALookaheadViolation) {
  // Between runs no window is open: driver-side posts (scenario setup)
  // schedule directly, with the Simulator's clamp-to-now semantics.
  ShardedExecutive exec(2, millis(1));
  bool ran = false;
  exec.post(1, 0, [&] { ran = true; });
  (void)exec.run_until(millis(1));
  EXPECT_TRUE(ran);
}

TEST(ShardedExecutive, CancelAcrossShardIsRejected) {
  ShardedExecutive exec(2, millis(1));
  bool victim_ran = false;
  bool cancel_result = true;
  const EventHandle victim =
      exec.shard_view(0).at(millis(5), [&] { victim_ran = true; });
  // Same-shard mid-run cancels still work; a foreign shard's handle is
  // rejected without touching that shard's queue.
  exec.post(1, millis(1), [&] { cancel_result = exec.cancel(victim); });
  (void)exec.run_until(millis(10));
  EXPECT_FALSE(cancel_result);
  EXPECT_TRUE(victim_ran);

  // Quiesced, the driver owns every queue, so cancel finds the owner.
  bool later_ran = false;
  const EventHandle later =
      exec.shard_view(1).at(millis(20), [&] { later_ran = true; });
  EXPECT_TRUE(exec.cancel(later));
  (void)exec.run_until(millis(30));
  EXPECT_FALSE(later_ran);
}

TEST(ShardedExecutive, ForeignShardViewAtThrowsMidRun) {
  ShardedExecutive exec(2, millis(1));
  bool threw = false;
  exec.post(1, millis(1), [&] {
    try {
      (void)exec.shard_view(0).at(millis(5), [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  (void)exec.run_until(millis(10));
  EXPECT_TRUE(threw);
}

TEST(ShardedExecutive, ProfilerIsRefused) {
  ShardedExecutive exec(2);
  EXPECT_NO_THROW(exec.set_profiler(nullptr));
  EventLoopProfiler profiler;
  EXPECT_THROW(exec.set_profiler(&profiler), std::logic_error);
}

TEST(ShardedExecutive, StopEndsRunAtWindowBoundary) {
  ShardedExecutive exec(2, millis(1));
  exec.post(0, millis(1), [&] { exec.stop(); });
  bool later_ran = false;
  exec.post(1, seconds(5), [&] { later_ran = true; });
  (void)exec.run();
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(exec.pending_events(), 1u);
}

}  // namespace
}  // namespace mhrp::sim

namespace mhrp::scenario {
namespace {

/// A ScaleWorld small enough for TSan but with every cross-shard path
/// live: 36 routers in 4 movement regions (9 routers, 3 cells, 6
/// mobiles each), correspondents on the far region's shard, CBR flows
/// crossing the backbone both ways. movement_regions is pinned so the
/// movement RNG draws are identical at every shard count.
ScaleWorldOptions sharded_options(int shards) {
  ScaleWorldOptions opt;
  opt.routers = 36;
  opt.foreign_agents = 12;
  opt.mobile_hosts = 24;
  opt.correspondents = 4;
  opt.mean_dwell = sim::seconds(2);
  opt.protocol.seed = 7;
  opt.shards = shards;
  opt.movement_regions = 4;
  return opt;
}

std::string run_digest(const ScaleWorldOptions& opt, sim::Time duration) {
  ScaleWorld world(opt);
  world.start();
  (void)world.run_for(duration);
  return world.metrics_digest();
}

TEST(ShardedScaleWorld, OneShardMatchesSingleThreadedByteForByte) {
  // The acceptance bar for the whole redesign: putting the window
  // protocol, shard views, and mailboxes under ScaleWorld changes not
  // one byte of the replay digest when there is only one shard.
  const std::string serial = run_digest(sharded_options(0), sim::seconds(10));
  const std::string sharded = run_digest(sharded_options(1), sim::seconds(10));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded);
}

TEST(ShardedScaleWorld, FixedShardCountIsDeterministic) {
  const std::string first = run_digest(sharded_options(4), sim::seconds(10));
  const std::string second = run_digest(sharded_options(4), sim::seconds(10));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ShardedScaleWorld, ControlPlaneObservablesAreShardCountIndependent) {
  // Across DIFFERENT shard counts full digests legitimately diverge:
  // a cross-shard frame is sequenced at inbox-drain time rather than at
  // transmit time, so two events at the same simulated microsecond on a
  // shared node (the home agent, a correspondent) can swap — data-plane
  // counters wobble by a few packets. The contract (DESIGN.md §13) is
  // that everything keyed by simulated time stays identical: movement,
  // completed registrations, and the handoff-latency series merged on
  // the canonical (time, mobile) key.
  ScaleWorld one(sharded_options(1));
  ScaleWorld four(sharded_options(4));
  one.start();
  four.start();
  const ScaleRunStats s1 = one.run_for(sim::seconds(10));
  const ScaleRunStats s4 = four.run_for(sim::seconds(10));
  EXPECT_EQ(s1.moves, s4.moves);
  EXPECT_EQ(s1.registrations, s4.registrations);
  EXPECT_GT(s1.registrations, 0u);
  EXPECT_EQ(one.handoff_latencies(), four.handoff_latencies());
  ASSERT_FALSE(one.handoff_latencies().empty());
}

TEST(ShardedScaleWorld, RejectsUnshardableConfigurations) {
  // regions must be a positive multiple of shards...
  ScaleWorldOptions bad = sharded_options(4);
  bad.movement_regions = 6;
  EXPECT_THROW(ScaleWorld{bad}, std::invalid_argument);
  // ...every region needs at least one cell...
  ScaleWorldOptions sparse = sharded_options(4);
  sparse.movement_regions = 16;
  sparse.foreign_agents = 8;
  EXPECT_THROW(ScaleWorld{sparse}, std::invalid_argument);
  // ...and single-threaded instruments stay single-threaded.
  ScaleWorldOptions traced = sharded_options(2);
  traced.telemetry.trace = true;
  EXPECT_THROW(ScaleWorld{traced}, std::invalid_argument);
  ScaleWorldOptions profiled = sharded_options(2);
  profiled.telemetry.profiler = true;
  EXPECT_THROW(ScaleWorld{profiled}, std::invalid_argument);
  ScaleWorldOptions bursty = sharded_options(2);
  bursty.chaos.enabled = true;
  bursty.chaos.loss_bursts_per_sec = 0.2;
  EXPECT_THROW(ScaleWorld{bursty}, std::invalid_argument);
}

TEST(ShardedScaleWorld, TracerConstructionFailsFast) {
  // ScaleWorld's own validation rejects telemetry.trace under shards,
  // but a Tracer can also be attached to a bare Topology by hand; it
  // must refuse a sharded world up front (one output stream, many
  // workers) instead of interleaving garbage, mirroring
  // ShardedExecutive::set_profiler.
  scenario::Topology sharded(1, 2);
  EXPECT_THROW(scenario::Tracer{sharded}, std::logic_error);
  scenario::Topology serial(1, 0);
  EXPECT_NO_THROW(scenario::Tracer{serial});
}

TEST(ShardedScaleWorld, ChaosRunIsDeterministicAcrossRepeats) {
  // The TSan chaos target: cell outages and FA crashes on worker
  // shards, HA crashes on shard 0, recovery clocks hopping shards via
  // lookahead-delayed posts. Two runs must agree byte for byte.
  ScaleWorldOptions opt = sharded_options(4);
  opt.chaos.enabled = true;
  opt.chaos.fault_seed = 0xc4a05;
  opt.chaos.horizon = sim::seconds(10);
  opt.chaos.cell_outages_per_sec = 0.3;
  opt.chaos.fa_crashes_per_sec = 0.2;
  opt.chaos.ha_crashes_per_sec = 0.05;
  opt.chaos.mean_outage = sim::seconds(2);
  opt.chaos.mean_downtime = sim::seconds(2);
  const std::string first = run_digest(opt, sim::seconds(10));
  const std::string second = run_digest(opt, sim::seconds(10));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TopologyHookHandle, RemovesOnDestructionAndExplicitly) {
  Topology topo(1);
  int seen_a = 0;
  int seen_b = 0;
  HookHandle a = topo.add_node_added_hook([&](node::Node&) { ++seen_a; });
  {
    HookHandle b = topo.add_node_added_hook([&](node::Node&) { ++seen_b; });
    (void)topo.add_router("r0");
    EXPECT_EQ(seen_a, 1);
    EXPECT_EQ(seen_b, 1);
  }  // b unregisters here
  (void)topo.add_router("r1");
  EXPECT_EQ(seen_a, 2);
  EXPECT_EQ(seen_b, 1);

  EXPECT_TRUE(a.active());
  a.remove();
  EXPECT_FALSE(a.active());
  a.remove();  // idempotent
  (void)topo.add_router("r2");
  EXPECT_EQ(seen_a, 2);
}

TEST(TopologyHookHandle, StaleHandleCannotRemoveSlotReuser) {
  Topology topo(1);
  int seen_old = 0;
  int seen_new = 0;
  HookHandle old_handle =
      topo.add_node_added_hook([&](node::Node&) { ++seen_old; });
  old_handle.remove();
  // The freed slot is reused with a bumped generation; the stale handle
  // (moved-from semantics aside, remove() is already spent) must not be
  // able to unregister the new occupant.
  HookHandle new_handle =
      topo.add_node_added_hook([&](node::Node&) { ++seen_new; });
  old_handle.remove();
  (void)topo.add_router("r0");
  EXPECT_EQ(seen_old, 0);
  EXPECT_EQ(seen_new, 1);
}

TEST(TopologyHookHandle, MoveTransfersRegistration) {
  Topology topo(1);
  int seen = 0;
  HookHandle a = topo.add_node_added_hook([&](node::Node&) { ++seen; });
  HookHandle b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_TRUE(b.active());
  (void)topo.add_router("r0");
  EXPECT_EQ(seen, 1);
  b = HookHandle();  // assignment removes the old registration
  (void)topo.add_router("r1");
  EXPECT_EQ(seen, 1);
}

}  // namespace
}  // namespace mhrp::scenario
