// End-to-end audit runs: the paper's walkthrough scenarios execute under
// the full wire-invariant auditor and must produce zero violations, with
// real tunneled traffic observed at every hop.
#include <gtest/gtest.h>

#include "analysis/packet_auditor.hpp"
#include "scenario/audit_hooks.hpp"
#include "scenario/figure1.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/workload.hpp"

namespace mhrp {
namespace {

using analysis::PacketAuditor;
using scenario::Figure1;
using scenario::MhrpWorld;
using scenario::MhrpWorldOptions;

bool ping_once(Figure1& w) {
  bool replied = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { replied = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  return replied;
}

TEST(AuditIntegration, Figure1WalkthroughsRunCleanUnderFullAudit) {
  Figure1 w;
  PacketAuditor auditor;
  scenario::audit::attach(auditor, w);

  // §6.1: first packet — home-agent interception and a 12-octet tunnel.
  ASSERT_TRUE(w.register_at_d());
  EXPECT_TRUE(ping_once(w));
  // §6.2: S now builds the 8-octet header itself.
  EXPECT_TRUE(ping_once(w));
  // §6.3: movement — R4 keeps a forwarding pointer and re-tunnels (the
  // list-growth path), then R5 repairs the stale caches.
  ASSERT_TRUE(w.register_at_e());
  EXPECT_TRUE(ping_once(w));
  EXPECT_TRUE(ping_once(w));
  // §6.3 return home: cache entries are deleted, traffic flows plainly.
  ASSERT_TRUE(w.register_at_home());
  EXPECT_TRUE(ping_once(w));

  auditor.audit_caches(w.topo.sim().now());

  const analysis::AuditReport& report = auditor.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.frames_audited, 0u);
  EXPECT_GT(report.packets_audited, 0u);
  EXPECT_GT(report.mhrp_packets_audited, 0u);  // tunnels really were seen
  EXPECT_GT(report.cache_audits, 0u);
}

TEST(AuditIntegration, RoamingWorldWithOverflowRunsCleanUnderFullAudit) {
  // A tighter list bound plus continuous movement exercises re-tunnel
  // chains and the §4.4 overflow flush while the auditor watches.
  MhrpWorldOptions options;
  options.foreign_sites = 4;
  options.protocol.max_list_length = 2;
  MhrpWorld w(options);
  PacketAuditor auditor;
  scenario::audit::attach(auditor, w);

  ASSERT_TRUE(w.move_and_register(0, 0));
  scenario::CbrFlow flow(*w.correspondents[0], w.mobile_address(0),
                         /*dst_port=*/7777, /*payload_size=*/64,
                         sim::millis(50));
  flow.start();
  for (int site = 1; site < 8; ++site) {
    w.topo.sim().run_for(sim::millis(400));
    ASSERT_TRUE(w.move_and_register(0, site % options.foreign_sites));
  }
  w.topo.sim().run_for(sim::seconds(2));
  flow.stop();
  auditor.audit_caches(w.topo.sim().now());

  const analysis::AuditReport& report = auditor.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.mhrp_packets_audited, 0u);
}

TEST(AuditIntegration, AuditBuildAutoAttachesGlobalAuditor) {
  // In a -DMHRP_AUDIT=ON build every scenario topology is observed by the
  // process-global auditor; it must agree that traffic is clean. In other
  // builds auto-attach is a no-op by design.
  const std::uint64_t frames_before =
      scenario::audit::global_auditor().report().frames_audited;
  Figure1 w;
  ASSERT_TRUE(w.register_at_d());
  EXPECT_TRUE(ping_once(w));

  const analysis::AuditReport& report =
      scenario::audit::global_auditor().report();
  if (scenario::audit::audit_build()) {
    EXPECT_GT(report.frames_audited, frames_before);
    EXPECT_TRUE(report.clean()) << report.to_string();
  } else {
    EXPECT_EQ(report.frames_audited, frames_before);
  }
}

}  // namespace
}  // namespace mhrp
