// TCP-lite stream transport tests, culminating in the paper's headline
// demonstration: a bulk transfer to a mobile host that keeps running —
// no application restart, no reconnect — while the host moves between
// foreign agents and even returns home (paper §1/§8).
#include <gtest/gtest.h>

#include <numeric>

#include "node/stream.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using node::StreamHeader;
using node::StreamSocket;
using scenario::Topology;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::uint8_t(i * 31 + 7);
  return v;
}

TEST(StreamHeader, RoundTrip) {
  StreamHeader h;
  h.src_port = 4000;
  h.dst_port = 80;
  h.seq = 12345;
  h.ack = 777;
  h.syn = true;
  h.ack_flag = true;
  h.window = 8;
  std::vector<std::uint8_t> data{1, 2, 3};
  auto wire = h.encode(data);
  ASSERT_EQ(wire.size(), StreamHeader::kSize + 3);
  std::vector<std::uint8_t> out;
  StreamHeader d = StreamHeader::decode(wire, &out);
  EXPECT_EQ(d.src_port, 4000);
  EXPECT_EQ(d.dst_port, 80);
  EXPECT_EQ(d.seq, 12345u);
  EXPECT_EQ(d.ack, 777u);
  EXPECT_TRUE(d.syn);
  EXPECT_TRUE(d.ack_flag);
  EXPECT_FALSE(d.fin);
  EXPECT_EQ(out, data);
  wire[21] ^= 0xFF;  // corrupt a payload byte: checksum must catch it
  EXPECT_THROW(StreamHeader::decode(wire, &out), util::CodecError);
}

struct StreamLan {
  Topology topo;
  node::Host* a;
  node::Host* b;
  node::Router* r;

  StreamLan() {
    auto& lan1 = topo.add_link("lan1", sim::millis(1));
    auto& lan2 = topo.add_link("lan2", sim::millis(1));
    r = &topo.add_router("R");
    a = &topo.add_host("A");
    b = &topo.add_host("B");
    topo.connect(*r, lan1, ip("10.1.0.1"), 24);
    topo.connect(*r, lan2, ip("10.2.0.1"), 24);
    topo.connect(*a, lan1, ip("10.1.0.10"), 24);
    topo.connect(*b, lan2, ip("10.2.0.10"), 24);
    topo.install_static_routes();
  }
};

TEST(Stream, ConnectTransferClose) {
  StreamLan w;
  StreamSocket server(*w.b, 80);
  StreamSocket client(*w.a, 4000);

  std::vector<std::uint8_t> received;
  bool server_closed = false;
  server.on_data = [&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  };
  server.on_closed = [&] { server_closed = true; };
  server.listen();

  bool connected = false;
  client.on_connected = [&] { connected = true; };
  client.connect(ip("10.2.0.10"), 80);
  w.topo.sim().run_for(sim::seconds(2));
  ASSERT_TRUE(connected);
  ASSERT_TRUE(client.established());

  auto payload = pattern(20'000);
  client.send(payload);
  client.close();
  w.topo.sim().run_for(sim::seconds(30));
  EXPECT_EQ(received, payload);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(client.state(), StreamSocket::State::kClosed);
  EXPECT_EQ(client.bytes_acked(), payload.size());
}

TEST(Stream, BidirectionalEcho) {
  StreamLan w;
  StreamSocket server(*w.b, 80);
  StreamSocket client(*w.a, 4000);
  std::vector<std::uint8_t> echoed;
  server.on_data = [&](std::span<const std::uint8_t> d) {
    std::vector<std::uint8_t> copy(d.begin(), d.end());
    server.send(copy);
  };
  client.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.insert(echoed.end(), d.begin(), d.end());
  };
  server.listen();
  client.connect(ip("10.2.0.10"), 80);
  w.topo.sim().run_for(sim::seconds(2));
  auto payload = pattern(4'000);
  client.send(payload);
  w.topo.sim().run_for(sim::seconds(20));
  EXPECT_EQ(echoed, payload);
}

TEST(Stream, SurvivesHeavyLoss) {
  StreamLan w;
  util::Rng rng(99);
  w.topo.find_link("lan2")->set_impairments(net::LinkImpairments{.loss = 0.25}, rng);

  StreamSocket server(*w.b, 80);
  StreamSocket client(*w.a, 4000);
  std::vector<std::uint8_t> received;
  server.on_data = [&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  };
  server.listen();
  client.connect(ip("10.2.0.10"), 80);
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_TRUE(client.established());

  auto payload = pattern(10'000);
  client.send(payload);
  w.topo.sim().run_for(sim::seconds(120));
  EXPECT_EQ(received, payload);
  EXPECT_GT(client.retransmissions(), 0u);
}

TEST(Stream, ConnectTimesOutAgainstSilence) {
  StreamLan w;
  StreamSocket client(*w.a, 4000);
  StreamSocket::Config config;
  config.max_retries = 3;
  config.retransmit_timeout = sim::millis(200);
  client.set_config(config);
  bool closed = false;
  client.on_closed = [&] { closed = true; };
  client.connect(ip("10.2.0.99"), 80);  // nobody there
  w.topo.sim().run_for(sim::seconds(30));
  EXPECT_TRUE(closed);
  EXPECT_EQ(client.state(), StreamSocket::State::kClosed);
}

TEST(Stream, TwoSocketsOneHostDemuxByPort) {
  StreamLan w;
  StreamSocket server_a(*w.b, 80);
  StreamSocket server_b(*w.b, 81);
  StreamSocket client_a(*w.a, 4000);
  StreamSocket client_b(*w.a, 4001);
  std::vector<std::uint8_t> at_a;
  std::vector<std::uint8_t> at_b;
  server_a.on_data = [&](std::span<const std::uint8_t> d) {
    at_a.insert(at_a.end(), d.begin(), d.end());
  };
  server_b.on_data = [&](std::span<const std::uint8_t> d) {
    at_b.insert(at_b.end(), d.begin(), d.end());
  };
  server_a.listen();
  server_b.listen();
  client_a.connect(ip("10.2.0.10"), 80);
  client_b.connect(ip("10.2.0.10"), 81);
  w.topo.sim().run_for(sim::seconds(2));
  std::vector<std::uint8_t> one{1, 1, 1};
  std::vector<std::uint8_t> two{2, 2};
  client_a.send(one);
  client_b.send(two);
  w.topo.sim().run_for(sim::seconds(5));
  EXPECT_EQ(at_a, one);
  EXPECT_EQ(at_b, two);
}

// ---- The paper's headline: connections survive movement ----

TEST(Stream, TransferSurvivesRoamingAcrossForeignAgentsAndHome) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 2;
  scenario::MhrpWorld w(options);
  ASSERT_TRUE(w.move_and_register(0, 0));

  // Server runs ON the mobile host, addressed by its permanent home
  // address; the correspondent connects to it and streams a "file".
  StreamSocket server(*w.mobiles[0], 80);
  StreamSocket client(*w.correspondents[0], 4000);
  std::vector<std::uint8_t> received;
  bool closed = false;
  server.on_data = [&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  };
  server.on_closed = [&] { closed = true; };
  server.listen();
  client.connect(w.mobile_address(0), 80);
  w.topo.sim().run_for(sim::seconds(5));
  ASSERT_TRUE(client.established());

  // Large enough that the transfer is still running through every move.
  auto payload = pattern(1'500'000);
  client.send(payload);
  client.close();

  // While the transfer runs, the host moves: FA0 → FA1 → home → FA0.
  w.topo.sim().run_for(sim::seconds(3));
  ASSERT_TRUE(w.move_and_register(0, 1));
  w.topo.sim().run_for(sim::seconds(3));
  ASSERT_TRUE(w.move_and_register(0, -1));  // home
  w.topo.sim().run_for(sim::seconds(3));
  ASSERT_TRUE(w.move_and_register(0, 0));
  w.topo.sim().run_for(sim::seconds(120));

  // Same socket, same connection, all bytes, in order.
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  EXPECT_TRUE(closed);
  EXPECT_EQ(client.state(), StreamSocket::State::kClosed);
  // The moves really exercised the mobility machinery (the transport is
  // oblivious; retransmissions may even be zero when forwarding pointers
  // and prompt updates make the handoffs seamless).
  std::uint64_t tunnel_activity = w.ha->stats().tunnels_built;
  for (const auto& fa : w.fas) {
    tunnel_activity +=
        fa->stats().retunnels + fa->stats().delivered_to_visitor;
  }
  EXPECT_GT(tunnel_activity, 100u);
}

}  // namespace
}  // namespace mhrp
