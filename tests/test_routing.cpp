// Unit tests: longest-prefix-match table and shortest paths; plus the
// distance-vector service with §3 host-specific routes.
#include <gtest/gtest.h>

#include "routing/dijkstra.hpp"
#include "routing/dv/dv_process.hpp"
#include "routing/routing_table.hpp"
#include "scenario/topology.hpp"

namespace mhrp {
namespace {

using routing::Route;
using routing::RouteKind;
using routing::RoutingTable;

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s); }

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable t;
  t.install({net::Prefix::parse("10.0.0.0/8"), ip("1.1.1.1"), nullptr, 1,
             RouteKind::kStatic});
  t.install({net::Prefix::parse("10.2.0.0/16"), ip("2.2.2.2"), nullptr, 1,
             RouteKind::kStatic});
  t.install({net::Prefix::host(ip("10.2.0.77")), ip("3.3.3.3"), nullptr, 1,
             RouteKind::kHostSpecific});

  EXPECT_EQ(t.lookup(ip("10.9.0.1"))->next_hop, ip("1.1.1.1"));
  EXPECT_EQ(t.lookup(ip("10.2.1.1"))->next_hop, ip("2.2.2.2"));
  EXPECT_EQ(t.lookup(ip("10.2.0.77"))->next_hop, ip("3.3.3.3"));
  EXPECT_EQ(t.lookup(ip("11.0.0.1")), nullptr);
}

TEST(RoutingTable, DefaultRouteCatchesEverything) {
  RoutingTable t;
  t.install({net::Prefix(net::kUnspecified, 0), ip("9.9.9.9"), nullptr, 1,
             RouteKind::kStatic});
  EXPECT_EQ(t.lookup(ip("200.1.2.3"))->next_hop, ip("9.9.9.9"));
}

TEST(RoutingTable, ConnectedRoutesResistReplacement) {
  RoutingTable t;
  t.install({net::Prefix::parse("10.1.0.0/24"), net::kUnspecified, nullptr, 0,
             RouteKind::kConnected});
  t.install({net::Prefix::parse("10.1.0.0/24"), ip("5.5.5.5"), nullptr, 3,
             RouteKind::kDynamic});
  EXPECT_TRUE(t.lookup(ip("10.1.0.7"))->next_hop.is_unspecified());
  EXPECT_EQ(t.size(), 1u);
}

TEST(RoutingTable, RemoveKindSweepsOnlyThatKind) {
  RoutingTable t;
  t.install({net::Prefix::parse("10.1.0.0/24"), ip("1.1.1.1"), nullptr, 1,
             RouteKind::kStatic});
  t.install({net::Prefix::parse("10.2.0.0/24"), ip("1.1.1.1"), nullptr, 1,
             RouteKind::kDynamic});
  t.install({net::Prefix::parse("10.3.0.0/24"), ip("1.1.1.1"), nullptr, 1,
             RouteKind::kDynamic});
  t.remove_kind(RouteKind::kDynamic);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NE(t.lookup(ip("10.1.0.1")), nullptr);
  EXPECT_EQ(t.lookup(ip("10.2.0.1")), nullptr);
}

TEST(RoutingTable, RemoveRouteWithdrawsOneTierAndExposesFallback) {
  // The DV plane's withdrawal contract: removing the dynamic route for a
  // prefix re-exposes the static route underneath it (the fallback tier),
  // and removing the last tier empties the prefix out of the table.
  RoutingTable t;
  const auto prefix = net::Prefix::parse("10.7.0.0/24");
  t.install({prefix, ip("1.1.1.1"), nullptr, 1, RouteKind::kStatic});
  t.install({prefix, ip("2.2.2.2"), nullptr, 3, RouteKind::kDynamic});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(ip("10.7.0.9"))->next_hop, ip("2.2.2.2"));

  EXPECT_TRUE(t.remove_route(prefix, RouteKind::kDynamic));
  EXPECT_EQ(t.lookup(ip("10.7.0.9"))->next_hop, ip("1.1.1.1"));
  EXPECT_FALSE(t.remove_route(prefix, RouteKind::kDynamic));  // already gone

  EXPECT_TRUE(t.remove_route(prefix, RouteKind::kStatic));
  EXPECT_EQ(t.lookup(ip("10.7.0.9")), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(RoutingTable, UpdateMetricRewritesInPlace) {
  RoutingTable t;
  const auto prefix = net::Prefix::parse("10.8.0.0/24");
  t.install({prefix, ip("2.2.2.2"), nullptr, 3, RouteKind::kDynamic});
  EXPECT_TRUE(t.update_metric(prefix, RouteKind::kDynamic, 7));
  EXPECT_EQ(t.find(prefix)->metric, 7);
  EXPECT_EQ(t.find(prefix)->next_hop, ip("2.2.2.2"));
  // Absent prefix or absent tier: no-op, reported as such.
  EXPECT_FALSE(t.update_metric(prefix, RouteKind::kStatic, 1));
  EXPECT_FALSE(t.update_metric(net::Prefix::parse("10.9.0.0/24"),
                               RouteKind::kDynamic, 1));
}

TEST(RoutingTable, FindKindSeesShadowedTiers) {
  RoutingTable t;
  const auto prefix = net::Prefix::parse("10.1.0.0/24");
  t.install({prefix, net::kUnspecified, nullptr, 0, RouteKind::kConnected});
  t.install({prefix, ip("5.5.5.5"), nullptr, 3, RouteKind::kDynamic});
  // The forwarding view shows the connected route; the shadowed dynamic
  // tier is still inspectable (the DV process reads its own entries back
  // this way without disturbing forwarding).
  EXPECT_TRUE(t.lookup(ip("10.1.0.7"))->next_hop.is_unspecified());
  const Route* shadowed = t.find_kind(prefix, RouteKind::kDynamic);
  ASSERT_NE(shadowed, nullptr);
  EXPECT_EQ(shadowed->next_hop, ip("5.5.5.5"));
  EXPECT_EQ(t.find_kind(prefix, RouteKind::kStatic), nullptr);
}

TEST(Dijkstra, FindsShortestPathsAndFirstHops) {
  // 0 - 1 - 2
  //  \     /
  //   - 3 -
  routing::Graph g(4);
  auto edge = [&](int a, int b, double c) {
    g[std::size_t(a)].push_back({b, c});
    g[std::size_t(b)].push_back({a, c});
  };
  edge(0, 1, 1);
  edge(1, 2, 1);
  edge(0, 3, 1);
  edge(3, 2, 1);
  auto sp = routing::shortest_paths(g, 0);
  EXPECT_EQ(sp.distance[2], 2.0);
  EXPECT_EQ(sp.distance[1], 1.0);
  auto path = routing::path_to(sp, 0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 2);
}

TEST(Dijkstra, UnreachableVerticesReported) {
  routing::Graph g(3);
  g[0].push_back({1, 1.0});
  auto sp = routing::shortest_paths(g, 0);
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_TRUE(routing::path_to(sp, 0, 2).empty());
}

TEST(Dijkstra, RespectsEdgeWeights) {
  routing::Graph g(3);
  g[0].push_back({1, 10.0});
  g[0].push_back({2, 1.0});
  g[2].push_back({1, 1.0});
  auto sp = routing::shortest_paths(g, 0);
  EXPECT_EQ(sp.distance[1], 2.0);
  EXPECT_EQ(sp.first_hop[1], 2);
}

TEST(Dijkstra, EqualCostTieBreakIsInsertionOrderInvariant) {
  // A 2x3 grid where every inner vertex is reachable over several
  // equal-cost paths. The tie-break (lower predecessor id wins) must pin
  // the exact same next hops whether the adjacency lists are built
  // forwards or backwards — install_static_routes feeds first_hop
  // straight into next-hop addresses, so any drift here would change
  // forwarding bytes between two identically-seeded worlds.
  //
  //   0 - 1 - 2
  //   |   |   |
  //   3 - 4 - 5
  const std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {1, 4}, {2, 5}};
  routing::Graph forward(6);
  for (auto [a, b] : edges) {
    forward[std::size_t(a)].push_back({b, 1.0});
    forward[std::size_t(b)].push_back({a, 1.0});
  }
  routing::Graph backward(6);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    backward[std::size_t(it->second)].push_back({it->first, 1.0});
    backward[std::size_t(it->first)].push_back({it->second, 1.0});
  }

  auto render = [](const routing::ShortestPaths& sp) {
    std::string out;
    for (std::size_t v = 0; v < sp.first_hop.size(); ++v) {
      out += std::to_string(v) + ":" + std::to_string(sp.first_hop[v]) + " ";
    }
    return out;
  };
  const auto sp_f = routing::shortest_paths(forward, 0);
  const auto sp_b = routing::shortest_paths(backward, 0);
  // Vertex 4 (via 1, not 3) and vertex 5 (via 1, not 3) pin the
  // tie-break itself; the byte equality pins insertion-order invariance.
  EXPECT_EQ(render(sp_f), "0:-1 1:1 2:1 3:3 4:1 5:1 ");
  EXPECT_EQ(render(sp_f), render(sp_b));
}

// ---- Distance vector ----

struct DvWorld {
  scenario::Topology topo;
  node::Router* r1;
  node::Router* r2;
  node::Router* r3;
  std::unique_ptr<routing::dv::DvProcess> dv1, dv2, dv3;

  DvWorld() {
    // r1 -(lanA)- r2 -(lanB)- r3, with stub LANs on r1 and r3.
    auto& lan_a = topo.add_link("lanA", sim::millis(1));
    auto& lan_b = topo.add_link("lanB", sim::millis(1));
    auto& stub1 = topo.add_link("stub1", sim::millis(1));
    auto& stub3 = topo.add_link("stub3", sim::millis(1));
    r1 = &topo.add_router("r1");
    r2 = &topo.add_router("r2");
    r3 = &topo.add_router("r3");
    topo.connect(*r1, lan_a, ip("10.0.1.1"), 24);
    topo.connect(*r2, lan_a, ip("10.0.1.2"), 24);
    topo.connect(*r2, lan_b, ip("10.0.2.1"), 24);
    topo.connect(*r3, lan_b, ip("10.0.2.2"), 24);
    topo.connect(*r1, stub1, ip("10.1.0.1"), 24);
    topo.connect(*r3, stub3, ip("10.3.0.1"), 24);
    routing::dv::DvOptions config;
    config.update_period = sim::seconds(1);
    dv1 = std::make_unique<routing::dv::DvProcess>(*r1, config, 1);
    dv2 = std::make_unique<routing::dv::DvProcess>(*r2, config, 2);
    dv3 = std::make_unique<routing::dv::DvProcess>(*r3, config, 3);
  }
};

TEST(DistanceVector, ConvergesAcrossTwoHops) {
  DvWorld w;
  w.dv1->start();
  w.dv2->start();
  w.dv3->start();
  w.topo.sim().run_for(sim::seconds(10));
  // r1 should know r3's stub via r2.
  const auto* route = w.r1->routing_table().lookup(ip("10.3.0.5"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, ip("10.0.1.2"));
  EXPECT_EQ(route->kind, routing::RouteKind::kDynamic);
  EXPECT_EQ(route->metric, 2);
}

TEST(DistanceVector, HostSpecificRoutePropagatesAndWithdraws) {
  // Paper §3: a home agent advertises a /32 for a disconnected mobile
  // host, withdrawn when the host returns.
  DvWorld w;
  w.dv1->start();
  w.dv2->start();
  w.dv3->start();
  w.topo.sim().run_for(sim::seconds(10));

  const auto mh = ip("10.1.0.77");
  w.dv1->advertise_host_route(mh, true);
  w.topo.sim().run_for(sim::seconds(10));
  const auto* at_r3 = w.r3->routing_table().find(net::Prefix::host(mh));
  ASSERT_NE(at_r3, nullptr);
  EXPECT_EQ(at_r3->kind, routing::RouteKind::kHostSpecific);

  w.dv1->advertise_host_route(mh, false);
  w.topo.sim().run_for(sim::seconds(40));
  EXPECT_EQ(w.r3->routing_table().find(net::Prefix::host(mh)), nullptr);
}

TEST(DistanceVector, RoutesExpireWhenNeighborGoesSilent) {
  DvWorld w;
  w.dv1->start();
  w.dv2->start();
  w.dv3->start();
  w.topo.sim().run_for(sim::seconds(10));
  ASSERT_NE(w.r1->routing_table().lookup(ip("10.3.0.5")), nullptr);

  w.dv3->stop();
  w.dv2->stop();  // r2 stops refreshing what it learned from r3
  // r1 keeps hearing nothing; after route_timeout its sweep timer
  // poisons the entry and withdraws it from the forwarding table, and
  // after gc_delay more the entry is deleted outright.
  w.topo.sim().run_for(sim::seconds(120));
  const auto* route = w.r1->routing_table().lookup(ip("10.3.0.5"));
  EXPECT_EQ(route, nullptr);
  EXPECT_GE(w.dv1->stats().routes_expired, 1u);
}

}  // namespace
}  // namespace mhrp
