file(REMOVE_RECURSE
  "CMakeFiles/test_domain_coverage.dir/test_domain_coverage.cpp.o"
  "CMakeFiles/test_domain_coverage.dir/test_domain_coverage.cpp.o.d"
  "test_domain_coverage"
  "test_domain_coverage.pdb"
  "test_domain_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
