# Empty compiler generated dependencies file for test_domain_coverage.
# This may be replaced when dependencies are built.
