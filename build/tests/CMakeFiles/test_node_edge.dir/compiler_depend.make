# Empty compiler generated dependencies file for test_node_edge.
# This may be replaced when dependencies are built.
