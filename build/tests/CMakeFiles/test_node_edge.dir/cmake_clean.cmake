file(REMOVE_RECURSE
  "CMakeFiles/test_node_edge.dir/test_node_edge.cpp.o"
  "CMakeFiles/test_node_edge.dir/test_node_edge.cpp.o.d"
  "test_node_edge"
  "test_node_edge.pdb"
  "test_node_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
