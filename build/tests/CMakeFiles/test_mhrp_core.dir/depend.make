# Empty dependencies file for test_mhrp_core.
# This may be replaced when dependencies are built.
