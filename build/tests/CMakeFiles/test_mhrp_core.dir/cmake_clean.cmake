file(REMOVE_RECURSE
  "CMakeFiles/test_mhrp_core.dir/test_mhrp_core.cpp.o"
  "CMakeFiles/test_mhrp_core.dir/test_mhrp_core.cpp.o.d"
  "test_mhrp_core"
  "test_mhrp_core.pdb"
  "test_mhrp_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mhrp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
