file(REMOVE_RECURSE
  "CMakeFiles/test_mobile_host.dir/test_mobile_host.cpp.o"
  "CMakeFiles/test_mobile_host.dir/test_mobile_host.cpp.o.d"
  "test_mobile_host"
  "test_mobile_host.pdb"
  "test_mobile_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobile_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
