# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_figure1[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_mhrp_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_agent[1]_include.cmake")
include("/root/repo/build/tests/test_mobile_host[1]_include.cmake")
include("/root/repo/build/tests/test_domain_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_node_edge[1]_include.cmake")
