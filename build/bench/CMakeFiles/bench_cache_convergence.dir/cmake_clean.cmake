file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_convergence.dir/bench_cache_convergence.cpp.o"
  "CMakeFiles/bench_cache_convergence.dir/bench_cache_convergence.cpp.o.d"
  "bench_cache_convergence"
  "bench_cache_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
