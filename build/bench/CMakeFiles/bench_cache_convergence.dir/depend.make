# Empty dependencies file for bench_cache_convergence.
# This may be replaced when dependencies are built.
