# Empty dependencies file for bench_lsrr_slowpath.
# This may be replaced when dependencies are built.
