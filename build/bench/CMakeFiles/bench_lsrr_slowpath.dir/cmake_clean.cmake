file(REMOVE_RECURSE
  "CMakeFiles/bench_lsrr_slowpath.dir/bench_lsrr_slowpath.cpp.o"
  "CMakeFiles/bench_lsrr_slowpath.dir/bench_lsrr_slowpath.cpp.o.d"
  "bench_lsrr_slowpath"
  "bench_lsrr_slowpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsrr_slowpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
