file(REMOVE_RECURSE
  "CMakeFiles/bench_fa_recovery.dir/bench_fa_recovery.cpp.o"
  "CMakeFiles/bench_fa_recovery.dir/bench_fa_recovery.cpp.o.d"
  "bench_fa_recovery"
  "bench_fa_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fa_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
