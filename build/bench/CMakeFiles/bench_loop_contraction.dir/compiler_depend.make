# Empty compiler generated dependencies file for bench_loop_contraction.
# This may be replaced when dependencies are built.
