file(REMOVE_RECURSE
  "CMakeFiles/bench_loop_contraction.dir/bench_loop_contraction.cpp.o"
  "CMakeFiles/bench_loop_contraction.dir/bench_loop_contraction.cpp.o.d"
  "bench_loop_contraction"
  "bench_loop_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
