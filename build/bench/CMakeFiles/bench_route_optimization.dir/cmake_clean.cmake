file(REMOVE_RECURSE
  "CMakeFiles/bench_route_optimization.dir/bench_route_optimization.cpp.o"
  "CMakeFiles/bench_route_optimization.dir/bench_route_optimization.cpp.o.d"
  "bench_route_optimization"
  "bench_route_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_route_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
