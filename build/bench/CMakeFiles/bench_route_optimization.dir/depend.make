# Empty dependencies file for bench_route_optimization.
# This may be replaced when dependencies are built.
