# Empty dependencies file for bench_home_overhead.
# This may be replaced when dependencies are built.
