file(REMOVE_RECURSE
  "CMakeFiles/bench_home_overhead.dir/bench_home_overhead.cpp.o"
  "CMakeFiles/bench_home_overhead.dir/bench_home_overhead.cpp.o.d"
  "bench_home_overhead"
  "bench_home_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_home_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
