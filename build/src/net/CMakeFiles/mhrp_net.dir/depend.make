# Empty dependencies file for mhrp_net.
# This may be replaced when dependencies are built.
