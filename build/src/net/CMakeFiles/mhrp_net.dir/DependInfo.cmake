
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/icmp.cpp" "src/net/CMakeFiles/mhrp_net.dir/icmp.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/icmp.cpp.o.d"
  "/root/repo/src/net/interface.cpp" "src/net/CMakeFiles/mhrp_net.dir/interface.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/interface.cpp.o.d"
  "/root/repo/src/net/ip_address.cpp" "src/net/CMakeFiles/mhrp_net.dir/ip_address.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/ip_address.cpp.o.d"
  "/root/repo/src/net/ip_header.cpp" "src/net/CMakeFiles/mhrp_net.dir/ip_header.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/ip_header.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/mhrp_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/link.cpp.o.d"
  "/root/repo/src/net/mac_address.cpp" "src/net/CMakeFiles/mhrp_net.dir/mac_address.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/mac_address.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/mhrp_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/mhrp_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/mhrp_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mhrp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
