file(REMOVE_RECURSE
  "libmhrp_net.a"
)
