file(REMOVE_RECURSE
  "CMakeFiles/mhrp_net.dir/icmp.cpp.o"
  "CMakeFiles/mhrp_net.dir/icmp.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/interface.cpp.o"
  "CMakeFiles/mhrp_net.dir/interface.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/ip_address.cpp.o"
  "CMakeFiles/mhrp_net.dir/ip_address.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/ip_header.cpp.o"
  "CMakeFiles/mhrp_net.dir/ip_header.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/link.cpp.o"
  "CMakeFiles/mhrp_net.dir/link.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/mac_address.cpp.o"
  "CMakeFiles/mhrp_net.dir/mac_address.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/packet.cpp.o"
  "CMakeFiles/mhrp_net.dir/packet.cpp.o.d"
  "CMakeFiles/mhrp_net.dir/udp.cpp.o"
  "CMakeFiles/mhrp_net.dir/udp.cpp.o.d"
  "libmhrp_net.a"
  "libmhrp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
