# Empty dependencies file for mhrp_baselines.
# This may be replaced when dependencies are built.
