
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/columbia_ipip.cpp" "src/baselines/CMakeFiles/mhrp_baselines.dir/columbia_ipip.cpp.o" "gcc" "src/baselines/CMakeFiles/mhrp_baselines.dir/columbia_ipip.cpp.o.d"
  "/root/repo/src/baselines/ibm_lsrr.cpp" "src/baselines/CMakeFiles/mhrp_baselines.dir/ibm_lsrr.cpp.o" "gcc" "src/baselines/CMakeFiles/mhrp_baselines.dir/ibm_lsrr.cpp.o.d"
  "/root/repo/src/baselines/matsushita_iptp.cpp" "src/baselines/CMakeFiles/mhrp_baselines.dir/matsushita_iptp.cpp.o" "gcc" "src/baselines/CMakeFiles/mhrp_baselines.dir/matsushita_iptp.cpp.o.d"
  "/root/repo/src/baselines/sony_vip.cpp" "src/baselines/CMakeFiles/mhrp_baselines.dir/sony_vip.cpp.o" "gcc" "src/baselines/CMakeFiles/mhrp_baselines.dir/sony_vip.cpp.o.d"
  "/root/repo/src/baselines/sunshine_postel.cpp" "src/baselines/CMakeFiles/mhrp_baselines.dir/sunshine_postel.cpp.o" "gcc" "src/baselines/CMakeFiles/mhrp_baselines.dir/sunshine_postel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/node/CMakeFiles/mhrp_node.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/mhrp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mhrp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mhrp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
