file(REMOVE_RECURSE
  "libmhrp_baselines.a"
)
