file(REMOVE_RECURSE
  "CMakeFiles/mhrp_baselines.dir/columbia_ipip.cpp.o"
  "CMakeFiles/mhrp_baselines.dir/columbia_ipip.cpp.o.d"
  "CMakeFiles/mhrp_baselines.dir/ibm_lsrr.cpp.o"
  "CMakeFiles/mhrp_baselines.dir/ibm_lsrr.cpp.o.d"
  "CMakeFiles/mhrp_baselines.dir/matsushita_iptp.cpp.o"
  "CMakeFiles/mhrp_baselines.dir/matsushita_iptp.cpp.o.d"
  "CMakeFiles/mhrp_baselines.dir/sony_vip.cpp.o"
  "CMakeFiles/mhrp_baselines.dir/sony_vip.cpp.o.d"
  "CMakeFiles/mhrp_baselines.dir/sunshine_postel.cpp.o"
  "CMakeFiles/mhrp_baselines.dir/sunshine_postel.cpp.o.d"
  "libmhrp_baselines.a"
  "libmhrp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
