file(REMOVE_RECURSE
  "libmhrp_core.a"
)
