# Empty dependencies file for mhrp_core.
# This may be replaced when dependencies are built.
