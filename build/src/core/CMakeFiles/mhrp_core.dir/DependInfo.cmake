
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/mhrp_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/encapsulation.cpp" "src/core/CMakeFiles/mhrp_core.dir/encapsulation.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/encapsulation.cpp.o.d"
  "/root/repo/src/core/location_cache.cpp" "src/core/CMakeFiles/mhrp_core.dir/location_cache.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/location_cache.cpp.o.d"
  "/root/repo/src/core/mhrp_header.cpp" "src/core/CMakeFiles/mhrp_core.dir/mhrp_header.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/mhrp_header.cpp.o.d"
  "/root/repo/src/core/mobile_host.cpp" "src/core/CMakeFiles/mhrp_core.dir/mobile_host.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/mobile_host.cpp.o.d"
  "/root/repo/src/core/registration.cpp" "src/core/CMakeFiles/mhrp_core.dir/registration.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/registration.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/core/CMakeFiles/mhrp_core.dir/replication.cpp.o" "gcc" "src/core/CMakeFiles/mhrp_core.dir/replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/node/CMakeFiles/mhrp_node.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/mhrp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mhrp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mhrp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
