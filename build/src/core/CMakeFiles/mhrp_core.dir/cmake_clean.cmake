file(REMOVE_RECURSE
  "CMakeFiles/mhrp_core.dir/agent.cpp.o"
  "CMakeFiles/mhrp_core.dir/agent.cpp.o.d"
  "CMakeFiles/mhrp_core.dir/encapsulation.cpp.o"
  "CMakeFiles/mhrp_core.dir/encapsulation.cpp.o.d"
  "CMakeFiles/mhrp_core.dir/location_cache.cpp.o"
  "CMakeFiles/mhrp_core.dir/location_cache.cpp.o.d"
  "CMakeFiles/mhrp_core.dir/mhrp_header.cpp.o"
  "CMakeFiles/mhrp_core.dir/mhrp_header.cpp.o.d"
  "CMakeFiles/mhrp_core.dir/mobile_host.cpp.o"
  "CMakeFiles/mhrp_core.dir/mobile_host.cpp.o.d"
  "CMakeFiles/mhrp_core.dir/registration.cpp.o"
  "CMakeFiles/mhrp_core.dir/registration.cpp.o.d"
  "CMakeFiles/mhrp_core.dir/replication.cpp.o"
  "CMakeFiles/mhrp_core.dir/replication.cpp.o.d"
  "libmhrp_core.a"
  "libmhrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
