file(REMOVE_RECURSE
  "CMakeFiles/mhrp_routing.dir/dijkstra.cpp.o"
  "CMakeFiles/mhrp_routing.dir/dijkstra.cpp.o.d"
  "CMakeFiles/mhrp_routing.dir/routing_table.cpp.o"
  "CMakeFiles/mhrp_routing.dir/routing_table.cpp.o.d"
  "libmhrp_routing.a"
  "libmhrp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
