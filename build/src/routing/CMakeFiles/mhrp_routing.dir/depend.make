# Empty dependencies file for mhrp_routing.
# This may be replaced when dependencies are built.
