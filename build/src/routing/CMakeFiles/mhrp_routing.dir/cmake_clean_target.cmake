file(REMOVE_RECURSE
  "libmhrp_routing.a"
)
