# Empty compiler generated dependencies file for mhrp_node.
# This may be replaced when dependencies are built.
