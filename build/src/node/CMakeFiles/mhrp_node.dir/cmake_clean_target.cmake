file(REMOVE_RECURSE
  "libmhrp_node.a"
)
