
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/dv_routing.cpp" "src/node/CMakeFiles/mhrp_node.dir/dv_routing.cpp.o" "gcc" "src/node/CMakeFiles/mhrp_node.dir/dv_routing.cpp.o.d"
  "/root/repo/src/node/host.cpp" "src/node/CMakeFiles/mhrp_node.dir/host.cpp.o" "gcc" "src/node/CMakeFiles/mhrp_node.dir/host.cpp.o.d"
  "/root/repo/src/node/node.cpp" "src/node/CMakeFiles/mhrp_node.dir/node.cpp.o" "gcc" "src/node/CMakeFiles/mhrp_node.dir/node.cpp.o.d"
  "/root/repo/src/node/stream.cpp" "src/node/CMakeFiles/mhrp_node.dir/stream.cpp.o" "gcc" "src/node/CMakeFiles/mhrp_node.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mhrp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/mhrp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mhrp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
