file(REMOVE_RECURSE
  "CMakeFiles/mhrp_node.dir/dv_routing.cpp.o"
  "CMakeFiles/mhrp_node.dir/dv_routing.cpp.o.d"
  "CMakeFiles/mhrp_node.dir/host.cpp.o"
  "CMakeFiles/mhrp_node.dir/host.cpp.o.d"
  "CMakeFiles/mhrp_node.dir/node.cpp.o"
  "CMakeFiles/mhrp_node.dir/node.cpp.o.d"
  "CMakeFiles/mhrp_node.dir/stream.cpp.o"
  "CMakeFiles/mhrp_node.dir/stream.cpp.o.d"
  "libmhrp_node.a"
  "libmhrp_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
