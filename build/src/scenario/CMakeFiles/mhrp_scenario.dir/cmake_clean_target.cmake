file(REMOVE_RECURSE
  "libmhrp_scenario.a"
)
