# Empty dependencies file for mhrp_scenario.
# This may be replaced when dependencies are built.
