file(REMOVE_RECURSE
  "CMakeFiles/mhrp_scenario.dir/figure1.cpp.o"
  "CMakeFiles/mhrp_scenario.dir/figure1.cpp.o.d"
  "CMakeFiles/mhrp_scenario.dir/mhrp_world.cpp.o"
  "CMakeFiles/mhrp_scenario.dir/mhrp_world.cpp.o.d"
  "CMakeFiles/mhrp_scenario.dir/topology.cpp.o"
  "CMakeFiles/mhrp_scenario.dir/topology.cpp.o.d"
  "CMakeFiles/mhrp_scenario.dir/tracer.cpp.o"
  "CMakeFiles/mhrp_scenario.dir/tracer.cpp.o.d"
  "CMakeFiles/mhrp_scenario.dir/workload.cpp.o"
  "CMakeFiles/mhrp_scenario.dir/workload.cpp.o.d"
  "libmhrp_scenario.a"
  "libmhrp_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
