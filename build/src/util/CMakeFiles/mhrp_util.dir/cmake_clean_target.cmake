file(REMOVE_RECURSE
  "libmhrp_util.a"
)
