file(REMOVE_RECURSE
  "CMakeFiles/mhrp_util.dir/checksum.cpp.o"
  "CMakeFiles/mhrp_util.dir/checksum.cpp.o.d"
  "CMakeFiles/mhrp_util.dir/log.cpp.o"
  "CMakeFiles/mhrp_util.dir/log.cpp.o.d"
  "libmhrp_util.a"
  "libmhrp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhrp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
