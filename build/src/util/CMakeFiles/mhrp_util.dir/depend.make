# Empty dependencies file for mhrp_util.
# This may be replaced when dependencies are built.
