# Empty compiler generated dependencies file for campus_outage.
# This may be replaced when dependencies are built.
