file(REMOVE_RECURSE
  "CMakeFiles/campus_outage.dir/campus_outage.cpp.o"
  "CMakeFiles/campus_outage.dir/campus_outage.cpp.o.d"
  "campus_outage"
  "campus_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
