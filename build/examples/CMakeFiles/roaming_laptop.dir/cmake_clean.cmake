file(REMOVE_RECURSE
  "CMakeFiles/roaming_laptop.dir/roaming_laptop.cpp.o"
  "CMakeFiles/roaming_laptop.dir/roaming_laptop.cpp.o.d"
  "roaming_laptop"
  "roaming_laptop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_laptop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
