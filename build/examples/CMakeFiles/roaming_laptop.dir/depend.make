# Empty dependencies file for roaming_laptop.
# This may be replaced when dependencies are built.
