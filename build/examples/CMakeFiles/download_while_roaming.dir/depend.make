# Empty dependencies file for download_while_roaming.
# This may be replaced when dependencies are built.
