file(REMOVE_RECURSE
  "CMakeFiles/download_while_roaming.dir/download_while_roaming.cpp.o"
  "CMakeFiles/download_while_roaming.dir/download_while_roaming.cpp.o.d"
  "download_while_roaming"
  "download_while_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_while_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
