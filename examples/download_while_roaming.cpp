// The paper's opening complaint, solved: "currently running network
// applications must usually be restarted" when a host changes networks.
// Under MHRP they are not. A correspondent downloads a 2 MB "file" over
// the TCP-lite stream transport from a server running ON the mobile
// host, addressed only by its permanent home address — while the host
// moves between two foreign agents and even drops by home. The transport
// has no idea any of that happened.
//
// Build & run:  ./build/examples/download_while_roaming
#include <cstdio>

#include "node/stream.hpp"
#include "scenario/mhrp_world.hpp"

using namespace mhrp;

int main() {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 2;
  scenario::MhrpWorld w(options);
  if (!w.move_and_register(0, 0)) return 1;

  std::printf("== 2 MB download from a server on mobile host %s ==\n\n",
              w.mobile_address(0).to_string().c_str());

  // Server on the mobile host, client at the correspondent.
  node::StreamSocket server(*w.mobiles[0], 80);
  node::StreamSocket client(*w.correspondents[0], 4000);
  // A modest window keeps the download running long enough to move
  // through every cell while it streams.
  node::StreamSocket::Config throttle;
  throttle.segment_size = 256;
  throttle.window_segments = 4;
  server.set_config(throttle);
  std::uint64_t downloaded = 0;
  bool done = false;
  client.on_data = [&](std::span<const std::uint8_t> d) {
    downloaded += d.size();
  };
  client.on_closed = [&] { done = true; };

  constexpr std::size_t kFileSize = 2'000'000;
  server.listen();
  server.on_connected = [&] {
    // Stream the "file" as soon as the client connects.
    std::vector<std::uint8_t> file(kFileSize, 0x5A);
    server.send(file);
    server.close();
  };
  client.connect(w.mobile_address(0), 80);
  w.topo.sim().run_for(sim::seconds(2));
  if (!client.established()) {
    std::printf("connect failed\n");
    return 1;
  }

  const char* cells[] = {"cell 0", "cell 1", "HOME", "cell 0"};
  int site_for_step[] = {1, -1, 0, 1};
  int step = 0;
  while (!done && step < 24) {
    w.topo.sim().run_for(sim::seconds(2));
    std::printf("  t=%2llds  %7.1f%%  (%llu bytes)  host at %s\n",
                (long long)sim::to_seconds(w.topo.sim().now()),
                100.0 * double(downloaded) / kFileSize,
                (unsigned long long)downloaded,
                cells[std::size_t(step) % 4]);
    if (!done && step < 4) {
      // Keep moving while the download runs.
      if (!w.move_and_register(0, site_for_step[step])) {
        std::printf("re-registration failed\n");
        return 1;
      }
    }
    ++step;
  }
  w.topo.sim().run_for(sim::seconds(5));

  std::printf("\ndownload %s: %llu / %u bytes, %llu transport "
              "retransmissions,\nsame socket the whole time — no restart, "
              "no reconnect.\n",
              done ? "complete" : "INCOMPLETE",
              (unsigned long long)downloaded, unsigned(kFileSize),
              (unsigned long long)server.retransmissions());
  std::printf("mobility machinery used en route: HA tunnels %llu, FA "
              "deliveries %llu + %llu\n",
              (unsigned long long)w.ha->stats().tunnels_built,
              (unsigned long long)w.fas[0]->stats().delivered_to_visitor,
              (unsigned long long)w.fas[1]->stats().delivered_to_visitor);
  return done ? 0 : 1;
}
