// Roaming laptop: a correspondent streams CBR UDP to a mobile host that
// wanders across five wireless cells (exponential dwell times), the
// paper's "continuously moving host connected through a wireless
// interface" (§3). Prints a per-interval delivery report and the
// end-of-run handoff accounting, then repeats the run with forwarding
// pointers disabled to show what the old foreign agent's pointer buys.
//
// Build & run:  ./build/examples/roaming_laptop
#include <cstdio>

#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"
#include "scenario/workload.hpp"

using namespace mhrp;

namespace {

struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t moves = 0;
  std::uint64_t updates = 0;
};

RunResult run(bool forwarding_pointers, bool narrate) {
  scenario::MhrpWorldOptions options;
  options.foreign_sites = 5;
  options.mobile_hosts = 1;
  options.correspondents = 1;
  options.protocol.forwarding_pointers = forwarding_pointers;
  options.protocol.advertisement_period = sim::millis(500);
  scenario::MhrpWorld w(options);

  if (!w.move_and_register(0, 0)) {
    std::printf("initial registration failed\n");
    return {};
  }

  std::uint64_t received = 0;
  w.mobiles[0]->bind_udp(9000, [&](const net::UdpDatagram&,
                                   const net::IpHeader&, net::Interface&) {
    ++received;
  });

  scenario::CbrFlow flow(*w.correspondents[0], w.mobile_address(0), 9000,
                         64, sim::millis(50));
  scenario::MovementSchedule walk(
      *w.mobiles[0], {w.cells[0], w.cells[1], w.cells[2], w.cells[3],
                      w.cells[4]},
      sim::seconds(8), w.topo.rng().fork());

  flow.start();
  walk.start();
  const sim::Time horizon = sim::seconds(60);
  const sim::Time tick = sim::seconds(10);
  std::uint64_t last_received = 0;
  std::uint64_t last_sent = 0;
  for (sim::Time t = 0; t < horizon; t += tick) {
    w.topo.sim().run_for(tick);
    if (narrate) {
      std::printf("  t=%2llds  sent %4llu  delivered %4llu  (interval loss "
                  "%llu)  cell=%s\n",
                  (long long)sim::to_seconds(w.topo.sim().now()),
                  (unsigned long long)flow.sent(),
                  (unsigned long long)received,
                  (unsigned long long)((flow.sent() - last_sent) -
                                       (received - last_received)),
                  w.mobiles[0]->radio().link()
                      ? w.mobiles[0]->radio().link()->name().c_str()
                      : "(detached)");
    }
    last_received = received;
    last_sent = flow.sent();
  }
  flow.stop();
  walk.stop();
  w.topo.sim().run_for(sim::seconds(5));  // drain in-flight packets

  return {flow.sent(), received, walk.moves(), w.total_updates_sent()};
}

}  // namespace

int main() {
  std::printf("== Roaming laptop: CBR stream across 5 wireless cells ==\n");
  std::printf("\n-- with forwarding pointers (paper §2) --\n");
  RunResult with_ptr = run(true, true);
  std::printf("sent %llu, delivered %llu (%.1f%%), %llu moves, "
              "%llu location updates\n",
              (unsigned long long)with_ptr.sent,
              (unsigned long long)with_ptr.received,
              100.0 * double(with_ptr.received) / double(with_ptr.sent),
              (unsigned long long)with_ptr.moves,
              (unsigned long long)with_ptr.updates);

  std::printf("\n-- without forwarding pointers --\n");
  RunResult without_ptr = run(false, false);
  std::printf("sent %llu, delivered %llu (%.1f%%), %llu moves, "
              "%llu location updates\n",
              (unsigned long long)without_ptr.sent,
              (unsigned long long)without_ptr.received,
              100.0 * double(without_ptr.received) / double(without_ptr.sent),
              (unsigned long long)without_ptr.moves,
              (unsigned long long)without_ptr.updates);

  std::printf("\nForwarding pointers let the old foreign agent shortcut\n"
              "packets sent under stale caches during each handoff.\n");
  return 0;
}
