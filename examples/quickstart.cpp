// Quickstart: the paper's Figure 1 world, §6.1–§6.2 in action.
//
//   S (network A) pings mobile host M, whose home is network B but who is
//   currently attached to wireless network D behind foreign agent R4.
//
// Shows: agent discovery + registration, home-agent interception and
// tunneling of the first packet, the location update back to S, and S
// tunneling subsequent packets itself with the 8-octet sender-built
// MHRP header.
//
// Build & run:  ./build/examples/quickstart
// Set MHRP_TRACE=1 to print every forwarding/delivery event.
#include <cstdio>

#include <memory>

#include "scenario/figure1.hpp"
#include "scenario/metrics.hpp"
#include "scenario/tracer.hpp"

using namespace mhrp;

int main() {
  scenario::Figure1 world;
  std::unique_ptr<scenario::Tracer> tracer;
  if (scenario::Tracer::enabled_by_env()) {
    tracer = std::make_unique<scenario::Tracer>(world.topo);
  }

  std::printf("== MHRP quickstart: the paper's Figure 1 ==\n");
  std::printf("M's home address: %s (network B, home agent R2 = 10.2.0.1)\n",
              world.m_address().to_string().c_str());

  std::printf("\n-- M roams to wireless network D --\n");
  if (!world.register_at_d()) {
    std::printf("registration failed\n");
    return 1;
  }
  std::printf("M discovered foreign agent %s and registered; home agent's\n",
              world.m->current_agent().to_string().c_str());
  std::printf("database now binds M -> %s\n",
              world.ha->home_binding(world.m_address())->to_string().c_str());

  scenario::FlowRecorder recorder(*world.m);
  recorder.set_filter([&](const net::Packet& p) {
    return p.header().dst == world.m_address() && p.hop_count() > 1;
  });

  std::printf("\n-- S pings M (first packet: via home network, §6.1) --\n");
  bool ok = false;
  sim::Time rtt = 0;
  world.s->ping(world.m_address(), [&](const node::Host::PingResult& r) {
    ok = r.replied;
    rtt = r.rtt;
  });
  world.topo.sim().run_for(sim::seconds(10));
  std::printf("reply: %s, rtt %.1f ms\n", ok ? "yes" : "NO",
              sim::to_seconds(rtt) * 1e3);
  std::printf("home agent intercepted %llu packet(s), built %llu tunnel(s), "
              "sent %llu location update(s)\n",
              (unsigned long long)world.ha->stats().intercepted_home,
              (unsigned long long)world.ha->stats().tunnels_built,
              (unsigned long long)world.ha->stats().updates_sent);
  std::printf("MHRP overhead on that packet: %.0f bytes "
              "(home-agent-built header)\n",
              recorder.total().overhead_bytes.max);
  std::printf("S cached M's location: %s\n",
              world.agent_s->cache().peek(world.m_address())
                  ? world.agent_s->cache().peek(world.m_address())->to_string()
                        .c_str()
                  : "(none)");

  std::printf("\n-- S pings M again (sender tunnels directly, §6.2) --\n");
  const auto intercepted_before = world.ha->stats().intercepted_home;
  ok = false;
  world.s->ping(world.m_address(), [&](const node::Host::PingResult& r) {
    ok = r.replied;
    rtt = r.rtt;
  });
  world.topo.sim().run_for(sim::seconds(10));
  std::printf("reply: %s, rtt %.1f ms\n", ok ? "yes" : "NO",
              sim::to_seconds(rtt) * 1e3);
  std::printf("home agent interceptions since: %llu (zero = bypassed)\n",
              (unsigned long long)(world.ha->stats().intercepted_home -
                                   intercepted_before));
  std::printf("MHRP overhead on that packet: %.0f bytes "
              "(sender-built header)\n",
              recorder.total().overhead_bytes.min);

  std::printf("\n-- M returns home (§6.3): zero overhead again --\n");
  if (!world.register_at_home()) {
    std::printf("homecoming registration failed\n");
    return 1;
  }
  // First packet repairs S's cache; the next is plain IP.
  ok = false;
  world.s->ping(world.m_address(),
                [&](const node::Host::PingResult& r) { ok = r.replied; });
  world.topo.sim().run_for(sim::seconds(10));
  scenario::FlowRecorder home_recorder(*world.m);
  home_recorder.set_filter([&](const net::Packet& p) {
    return p.header().dst == world.m_address();
  });
  ok = false;
  world.s->ping(world.m_address(),
                [&](const node::Host::PingResult& r) { ok = r.replied; });
  world.topo.sim().run_for(sim::seconds(10));
  std::printf("reply: %s, overhead now: %.0f bytes, S's cache entry: %s\n",
              ok ? "yes" : "NO", home_recorder.total().overhead_bytes.max,
              world.agent_s->cache().peek(world.m_address()) ? "stale!"
                                                             : "deleted");
  std::printf("\nDone. \"There is no penalty for a host being "
              "'mobile capable'.\"\n");
  return 0;
}
