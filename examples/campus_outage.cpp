// Campus outage drill: the §5 robustness features under fault injection.
//
//  1. The serving foreign agent crashes and loses its visiting list; the
//     next data packet bounces off the home agent, which restores the
//     foreign agent with a location update (§5.2).
//  2. A rogue implementation has wired a cycle of cache agents; an
//     injected packet circles once, is detected via the previous-source
//     list, and the loop is dissolved with invalidating updates (§5.3).
//
// Build & run:  ./build/examples/campus_outage
#include <cstdio>

#include "core/encapsulation.hpp"
#include "net/udp.hpp"
#include "scenario/figure1.hpp"

using namespace mhrp;

int main() {
  std::printf("== Part 1: foreign agent crash & recovery (paper 5.2) ==\n");
  scenario::Figure1 w;
  if (!w.register_at_d()) return 1;
  bool ok = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  std::printf("baseline ping: %s\n", ok ? "ok" : "FAILED");

  std::printf("\n*** R4 crashes and reboots: visiting list gone ***\n");
  w.fa_r4->reboot();
  std::printf("R4 visiting list has M: %s\n",
              w.fa_r4->is_visiting(w.m_address()) ? "yes" : "no");

  ok = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { ok = r.replied; }, 32,
            sim::seconds(3));
  w.topo.sim().run_for(sim::seconds(10));
  std::printf("first ping after crash: %s (the packet detoured to the home\n"
              "agent, which discarded it and restored R4 instead)\n",
              ok ? "ok" : "lost, as expected");
  std::printf("home agent discarded-for-recovery: %llu, "
              "R4 recovery re-adds: %llu, R4 visiting again: %s\n",
              (unsigned long long)w.ha->stats().discarded_for_recovery,
              (unsigned long long)w.fa_r4->stats().recovery_readds,
              w.fa_r4->is_visiting(w.m_address()) ? "yes" : "no");

  ok = false;
  w.s->ping(w.m_address(),
            [&](const node::Host::PingResult& r) { ok = r.replied; });
  w.topo.sim().run_for(sim::seconds(10));
  std::printf("second ping: %s\n", ok ? "ok — service restored" : "FAILED");

  std::printf("\n== Part 2: cache-agent loop detection (paper 5.3) ==\n");
  scenario::Topology topo;
  auto& lan = topo.add_link("lan", sim::millis(1));
  const net::IpAddress mh = net::IpAddress::parse("10.99.0.77");
  std::vector<node::Router*> routers;
  std::vector<std::unique_ptr<core::MhrpAgent>> agents;
  constexpr int kLoop = 5;
  for (int i = 0; i < kLoop; ++i) {
    auto& r = topo.add_router("C" + std::to_string(i));
    topo.connect(r, lan, net::IpAddress::of(10, 9, 0, std::uint8_t(i + 1)),
                 24);
    routers.push_back(&r);
    core::AgentConfig config;
    config.cache_agent = true;
    config.update_min_interval = sim::millis(10);
    agents.push_back(std::make_unique<core::MhrpAgent>(r, config));
  }
  auto& injector = topo.add_host("inj");
  topo.connect(injector, lan, net::IpAddress::parse("10.9.0.100"), 24);
  topo.install_static_routes();
  for (int i = 0; i < kLoop; ++i) {
    agents[std::size_t(i)]->cache().update(
        mh, routers[std::size_t((i + 1) % kLoop)]->primary_address());
  }
  std::printf("built a %d-agent cache cycle for phantom host %s\n", kLoop,
              mh.to_string().c_str());

  core::MhrpHeader h;
  h.orig_protocol = net::to_u8(net::IpProto::kUdp);
  h.mobile_host = mh;
  util::ByteWriter writer;
  h.encode(writer);
  std::vector<std::uint8_t> payload(12, 0xEE);
  auto udp = net::encode_udp({1, 2}, payload);
  writer.bytes(udp);
  net::IpHeader iph;
  iph.protocol = net::to_u8(net::IpProto::kMhrp);
  iph.src = injector.primary_address();
  iph.dst = routers[0]->primary_address();
  iph.ttl = 255;
  injector.send_ip(net::Packet(iph, writer.take()));
  topo.sim().run_for(sim::seconds(10));

  std::uint64_t detected = 0;
  std::uint64_t retunnels = 0;
  std::size_t entries = 0;
  for (const auto& a : agents) {
    detected += a->stats().loops_detected;
    retunnels += a->stats().retunnels;
    entries += a->cache().peek(mh).has_value() ? 1 : 0;
  }
  std::printf("packet circled the loop: %llu re-tunnels before detection\n",
              (unsigned long long)retunnels);
  std::printf("loops detected: %llu; cache entries for %s remaining in the "
              "cycle: %zu\n",
              (unsigned long long)detected, mh.to_string().c_str(), entries);
  std::printf("\n\"Any such loop detected can also easily be corrected "
              "using the list in the MHRP header.\"\n");
  return 0;
}
