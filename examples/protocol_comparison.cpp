// Protocol comparison: a taste of §7. Sends one datagram to a roaming
// mobile host under MHRP and under each of the five prior protocols the
// paper compares against, printing the measured per-packet overhead and
// whether routing is optimized past the home network.
//
// Build & run:  ./build/examples/protocol_comparison
#include <cstdio>

#include "baselines/columbia_ipip.hpp"
#include "baselines/ibm_lsrr.hpp"
#include "baselines/matsushita_iptp.hpp"
#include "baselines/sony_vip.hpp"
#include "baselines/sunshine_postel.hpp"
#include "net/udp.hpp"
#include "scenario/metrics.hpp"
#include "scenario/mhrp_world.hpp"

using namespace mhrp;

namespace {

void row(const char* name, double first_overhead, double steady_overhead,
         const char* route, const char* needs_temp) {
  std::printf("%-22s %11.0f B %13.0f B  %-26s %s\n", name, first_overhead,
              steady_overhead, route, needs_temp);
}

}  // namespace

int main() {
  std::printf("== One datagram to a roaming host, six protocols ==\n\n");
  std::printf("%-22s %13s %15s  %-26s %s\n", "protocol", "1st packet",
              "steady state", "route after warmup", "temp addr?");

  // ---- MHRP ----
  {
    scenario::MhrpWorldOptions options;
    options.foreign_sites = 2;
    scenario::MhrpWorld w(options);
    if (!w.move_and_register(0, 0)) return 1;
    scenario::FlowRecorder recorder(*w.mobiles[0]);
    recorder.set_filter([&](const net::Packet& p) {
      return p.header().dst == w.mobile_address(0) && p.hop_count() > 1;
    });
    w.mobiles[0]->bind_udp(9000, [](const net::UdpDatagram&,
                                    const net::IpHeader&, net::Interface&) {});
    std::vector<std::uint8_t> data(64, 1);
    w.correspondents[0]->udp_send(w.mobile_address(0), 9000, data);
    w.topo.sim().run_for(sim::seconds(5));
    const double first = recorder.total().overhead_bytes.max;
    w.correspondents[0]->udp_send(w.mobile_address(0), 9000, data);
    w.topo.sim().run_for(sim::seconds(5));
    row("MHRP (this paper)", first, recorder.total().overhead_bytes.min,
        "sender -> FA direct", "no");
  }

  // The baselines share a 3-site world (see tests/test_baselines.cpp for
  // the full per-protocol scenarios; here we print the measured header
  // costs from byte-exact encapsulation of one 64-byte datagram).
  net::IpHeader inner_h;
  inner_h.protocol = net::to_u8(net::IpProto::kUdp);
  inner_h.src = net::IpAddress::parse("10.200.0.10");
  inner_h.dst = net::IpAddress::parse("10.1.0.100");
  std::vector<std::uint8_t> payload(64, 1);
  net::Packet inner(inner_h, net::encode_udp({1, 2}, payload));

  {
    net::IpHeader lsrr = inner_h;
    lsrr.options.push_back(
        net::make_lsrr_option({net::IpAddress::parse("10.2.0.1")}, 0));
    net::Packet p(lsrr, inner.payload());
    const double overhead = double(p.wire_size() - inner.wire_size());
    row("Sunshine-Postel 1980", overhead, overhead,
        "sender -> forwarder (LSRR)", "no (global DB)");
  }
  {
    auto outer = baselines::ipip_encapsulate(
        inner, net::IpAddress::parse("10.1.0.1"),
        net::IpAddress::parse("10.2.0.1"));
    const double overhead = double(outer.wire_size() - inner.wire_size());
    row("Columbia IPIP 1991", overhead, overhead,
        "always via home MSR(s)", "off-campus only");
  }
  {
    baselines::VipHeader vh;
    vh.vip_src = inner_h.src;
    vh.vip_dst = inner_h.dst;
    net::Packet p(inner_h, vh.encode(inner.payload()));
    const double overhead = double(p.wire_size() - inner.wire_size());
    row("Sony VIP 1991", overhead, overhead, "router caches en route",
        "yes");
  }
  {
    auto outer = baselines::iptp_encapsulate(
        inner, net::IpAddress::parse("10.1.0.1"),
        net::IpAddress::parse("10.3.0.200"), inner_h.dst, false);
    const double overhead = double(outer.wire_size() - inner.wire_size());
    row("Matsushita IPTP 1992", overhead, overhead,
        "via PFS (forwarding mode)", "yes");
  }
  {
    net::IpHeader lsrr = inner_h;
    lsrr.options.push_back(
        net::make_lsrr_option({net::IpAddress::parse("10.2.0.1")}, 0));
    net::Packet p(lsrr, inner.payload());
    const double overhead = double(p.wire_size() - inner.wire_size());
    row("IBM LSRR 1992/93", overhead, overhead,
        "via base station (LSRR)", "no");
  }

  std::printf("\nPaper 7: MHRP 8/12 B vs Columbia 24 B, Sony 28 B,\n"
              "Matsushita 40 B, IBM 8 B each way.\n");
  return 0;
}
